//! The knowledge graph and its match-list access path.
//!
//! A [`KnowledgeGraph`] is either **flat** — the immutable columnar base
//! produced by the builder or a snapshot load — or a flat base plus one
//! frozen `OverlaySegment` of live writes (asserted rows, retraction
//! masks) produced by [`LiveGraph::commit`](crate::live::LiveGraph::commit).
//! Every access path merges the two sides on the fly while preserving the
//! storage-level contract operators rely on: matches stream in descending
//! raw-score order, ties broken by ascending storage index.
//!
//! Storage indexes form one global id space: base rows keep their ids
//! `0..base_len`, delta rows live at `base_len..base_len + delta_len`.
//! Because every base id is smaller than every delta id, the usual
//! "base wins score ties" merge rule coincides with the global
//! `(score desc, id asc)` order — merged lists are deterministic and
//! executor-independent, exactly like flat ones. Note that when rows are
//! masked by retractions the *visible* ids are no longer dense: iterate via
//! match lists, not `0..len()`.

use crate::columns::TripleColumns;
use crate::index::{PatternIndexes, PostingRange};
use crate::pattern_key::{pack2, pack3, PatternKey, Signature};
use crate::triple::{ScoredTriple, Triple};
use specqp_common::Dictionary;
use specqp_common::{Score, TermId};
use std::sync::Arc;

/// A frozen layer of live writes on top of an immutable base.
///
/// Built by the delta store when a write batch commits: `cols`/`indexes`
/// hold only the *alive* delta rows (local ids `0..delta_len`), `masked` is
/// a bitset of retracted/replaced base rows, and `all` is the fully merged
/// global scan list so the all-wildcard signature stays a borrowed slice.
#[derive(Debug, Default)]
pub(crate) struct OverlaySegment {
    /// Alive delta rows, local ids (global id = `base_len + local`).
    pub(crate) cols: TripleColumns,
    /// Pattern indexes over the delta rows alone (local ids).
    pub(crate) indexes: PatternIndexes,
    /// Bitset over base storage indexes: set = base row is not visible.
    pub(crate) masked: Vec<u64>,
    /// Number of set bits in `masked`.
    pub(crate) masked_count: u32,
    /// Merged global scan list (score desc, id asc), masking applied.
    pub(crate) all: Vec<u32>,
}

impl OverlaySegment {
    /// `true` if base row `id` is hidden by a retraction or replacement.
    #[inline]
    pub(crate) fn is_masked(&self, id: u32) -> bool {
        self.masked
            .get((id / 64) as usize)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    fn approx_bytes(&self) -> usize {
        self.cols.approx_bytes()
            + self.indexes.approx_bytes()
            + self.masked.len() * 8
            + self.all.len() * 4
    }
}

/// A fully indexed scored knowledge graph (Def. 1).
///
/// Build one with [`KnowledgeGraphBuilder`](crate::KnowledgeGraphBuilder),
/// load one from a binary snapshot with
/// [`snapshot::load_snapshot`](crate::snapshot::load_snapshot), or obtain a
/// live version with an overlay of recent writes from
/// [`LiveGraph::pinned`](crate::live::LiveGraph::pinned).
/// All lookup methods return matches sorted by descending raw score.
///
/// Storage is columnar: the triple table is four parallel `s`/`p`/`o`/`score`
/// columns ([`TripleColumns`]), so score-only access paths (upper bounds,
/// normalizers) never touch the term columns. The base columns and indexes
/// sit behind `Arc`s so that every live version forked from the same base
/// shares them — a commit clones two pointers, not the graph.
#[derive(Debug)]
pub struct KnowledgeGraph {
    pub(crate) dict: Dictionary,
    pub(crate) cols: Arc<TripleColumns>,
    pub(crate) indexes: Arc<PatternIndexes>,
    pub(crate) overlay: Option<OverlaySegment>,
}

static EMPTY: [u32; 0] = [];

/// Resolves the posting list for a 1- or 2-bound signature in `idx`.
/// `Spo` and `Xxx` have dedicated paths in the callers.
fn keyed_list(idx: &PatternIndexes, key: PatternKey) -> &[u32] {
    let resolve = |r: Option<PostingRange>| -> &[u32] { r.map(|r| idx.list(r)).unwrap_or(&EMPTY) };
    match key.signature() {
        Signature::SpX => resolve(idx.sp.get(pack2(key.s.unwrap(), key.p.unwrap()))),
        Signature::SxO => resolve(idx.so.get(pack2(key.s.unwrap(), key.o.unwrap()))),
        Signature::XpO => resolve(idx.po.get(pack2(key.p.unwrap(), key.o.unwrap()))),
        Signature::Sxx => resolve(idx.s.get(key.s.unwrap())),
        Signature::XpX => resolve(idx.p.get(key.p.unwrap())),
        Signature::XxO => resolve(idx.o.get(key.o.unwrap())),
        Signature::Spo | Signature::Xxx => unreachable!("handled by the callers"),
    }
}

impl KnowledgeGraph {
    /// Assembles a flat graph from its parts (builder / snapshot load).
    pub(crate) fn from_parts(
        dict: Dictionary,
        cols: TripleColumns,
        indexes: PatternIndexes,
    ) -> Self {
        KnowledgeGraph {
            dict,
            cols: Arc::new(cols),
            indexes: Arc::new(indexes),
            overlay: None,
        }
    }

    /// A sibling version of flat `base` carrying `overlay`, sharing the base
    /// columns and indexes by `Arc`.
    pub(crate) fn overlay_version(
        base: &KnowledgeGraph,
        dict: Dictionary,
        overlay: OverlaySegment,
    ) -> Self {
        debug_assert!(base.overlay.is_none(), "overlay base must be flat");
        KnowledgeGraph {
            dict,
            cols: Arc::clone(&base.cols),
            indexes: Arc::clone(&base.indexes),
            overlay: Some(overlay),
        }
    }

    /// The term dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of base rows — the boundary of the global id space: delta rows
    /// live at ids `>= base_len`.
    #[inline]
    pub(crate) fn base_len(&self) -> usize {
        self.cols.len()
    }

    /// Number of *visible* triples (base rows minus retraction masks, plus
    /// overlay rows).
    pub fn len(&self) -> usize {
        match &self.overlay {
            Some(ov) => ov.all.len(),
            None => self.cols.len(),
        }
    }

    /// `true` if the graph holds no visible triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when this graph carries an overlay of live writes on top of
    /// its immutable base (i.e. it came from a [`LiveGraph`] with
    /// uncompacted deltas).
    ///
    /// [`LiveGraph`]: crate::live::LiveGraph
    pub fn has_overlay(&self) -> bool {
        self.overlay.is_some()
    }

    /// The triple components at storage index `i` (global id space).
    #[inline]
    pub fn triple(&self, i: u32) -> Triple {
        let base_len = self.cols.len();
        if (i as usize) < base_len {
            self.cols.triple(i as usize)
        } else {
            self.overlay
                .as_ref()
                .expect("id beyond base without overlay")
                .cols
                .triple(i as usize - base_len)
        }
    }

    /// The triple at storage index `i` with its score.
    #[inline]
    pub fn scored(&self, i: u32) -> ScoredTriple {
        ScoredTriple {
            triple: self.triple(i),
            score: self.score(i),
        }
    }

    /// The columnar triple table of the immutable **base** (overlay rows,
    /// if any, live in their own columns and are reached through the
    /// id-dispatching accessors or [`KnowledgeGraph::gather_into`]).
    pub fn columns(&self) -> &TripleColumns {
        &self.cols
    }

    /// Iterates all visible triples with scores: base rows in storage order
    /// (retracted rows skipped), then overlay rows.
    pub fn iter_scored(&self) -> impl Iterator<Item = ScoredTriple> + '_ {
        let masked = |i: usize| {
            self.overlay
                .as_ref()
                .is_some_and(|ov| ov.is_masked(i as u32))
        };
        let base = (0..self.cols.len())
            .filter(move |&i| !masked(i))
            .map(|i| self.cols.scored(i));
        let delta = self
            .overlay
            .iter()
            .flat_map(|ov| (0..ov.cols.len()).map(|i| ov.cols.scored(i)));
        base.chain(delta)
    }

    /// Raw score of the triple at storage index `i` (global id space).
    #[inline]
    pub fn score(&self, i: u32) -> Score {
        let base_len = self.cols.len();
        if (i as usize) < base_len {
            self.cols.score(i as usize)
        } else {
            self.overlay
                .as_ref()
                .expect("id beyond base without overlay")
                .cols
                .score(i as usize - base_len)
        }
    }

    /// Gathers the rows at global ids `ids` into four parallel output
    /// vectors (appending) — the block-at-a-time fill path. Flat graphs take
    /// one tight columnar loop per column; overlay graphs dispatch each id
    /// to its side.
    pub fn gather_into(
        &self,
        ids: &[u32],
        s: &mut Vec<TermId>,
        p: &mut Vec<TermId>,
        o: &mut Vec<TermId>,
        score: &mut Vec<Score>,
    ) {
        match &self.overlay {
            None => self.cols.gather_into(ids, s, p, o, score),
            Some(ov) => {
                let base_len = self.cols.len();
                let side = |i: u32| -> (&TripleColumns, usize) {
                    if (i as usize) < base_len {
                        (&*self.cols, i as usize)
                    } else {
                        (&ov.cols, i as usize - base_len)
                    }
                };
                s.extend(ids.iter().map(|&i| {
                    let (c, u) = side(i);
                    c.subjects()[u]
                }));
                p.extend(ids.iter().map(|&i| {
                    let (c, u) = side(i);
                    c.predicates()[u]
                }));
                o.extend(ids.iter().map(|&i| {
                    let (c, u) = side(i);
                    c.objects()[u]
                }));
                score.extend(ids.iter().map(|&i| {
                    let (c, u) = side(i);
                    c.scores()[u]
                }));
            }
        }
    }

    /// Returns the score-descending [`MatchList`] for `key`.
    ///
    /// Fully bound keys yield a 0- or 1-element list; everything else is a
    /// posting-list lookup; the all-wildcard key returns the global list.
    /// On a flat graph every list borrows the postings arena directly; with
    /// an overlay the base and delta lists are merged (and retraction masks
    /// applied) into an owned list, except when the delta side has no
    /// matches and nothing is masked — then the borrowed fast path still
    /// applies.
    pub fn matches(&self, key: PatternKey) -> MatchList<'_> {
        let ids = match &self.overlay {
            None => self.flat_ids(key),
            Some(ov) => self.merged_ids(key, ov),
        };
        MatchList { graph: self, ids }
    }

    /// Flat-graph id resolution: every list is a borrowed arena slice.
    fn flat_ids(&self, key: PatternKey) -> Ids<'_> {
        let idx = &*self.indexes;
        let ids: &[u32] = match key.signature() {
            Signature::Spo => {
                let (s, p, o) = (key.s.unwrap(), key.p.unwrap(), key.o.unwrap());
                match idx.spo.get(pack3(s, p, o)) {
                    Some(i) => {
                        // Keep the borrowed-slice contract without a
                        // dedicated singleton arena: the triple also sits in
                        // its (p,o) posting list, so find it there and
                        // return that 1-element window.
                        let list = idx.po.get(pack2(p, o)).map(|r| idx.list(r)).unwrap_or(&[]);
                        match list.iter().position(|&x| x == i) {
                            Some(pos) => &list[pos..=pos],
                            None => &EMPTY,
                        }
                    }
                    None => &EMPTY,
                }
            }
            Signature::Xxx => &idx.all,
            _ => keyed_list(idx, key),
        };
        Ids::Borrowed(ids)
    }

    /// Overlay-graph id resolution: merge base and delta lists under the
    /// retraction mask, preserving `(score desc, global id asc)` order.
    fn merged_ids<'g>(&'g self, key: PatternKey, ov: &'g OverlaySegment) -> Ids<'g> {
        let base_len = self.cols.len() as u32;
        match key.signature() {
            Signature::Spo => {
                let (s, p, o) = (key.s.unwrap(), key.p.unwrap(), key.o.unwrap());
                let packed = pack3(s, p, o);
                if let Some(local) = ov.indexes.spo.get(packed) {
                    return Ids::Owned(vec![base_len + local]);
                }
                match self.indexes.spo.get(packed) {
                    Some(i) if !ov.is_masked(i) => Ids::Owned(vec![i]),
                    _ => Ids::Borrowed(&EMPTY),
                }
            }
            Signature::Xxx => Ids::Borrowed(&ov.all),
            _ => {
                let base = keyed_list(&self.indexes, key);
                let delta = keyed_list(&ov.indexes, key);
                if delta.is_empty() && ov.masked_count == 0 {
                    return Ids::Borrowed(base);
                }
                Ids::Owned(self.merge_lists(base, delta, ov))
            }
        }
    }

    /// Two-pointer merge of a base posting list and a delta posting list
    /// (local ids), skipping masked base rows. Both inputs are score-desc;
    /// on equal scores the base row wins, which is exactly ascending global
    /// id order since every base id is below `base_len`.
    fn merge_lists(&self, base: &[u32], delta_local: &[u32], ov: &OverlaySegment) -> Vec<u32> {
        let base_len = self.cols.len() as u32;
        let mut out = Vec::with_capacity(base.len() + delta_local.len());
        let (mut bi, mut di) = (0usize, 0usize);
        loop {
            while bi < base.len() && ov.is_masked(base[bi]) {
                bi += 1;
            }
            match (bi < base.len(), di < delta_local.len()) {
                (false, false) => break,
                (true, false) => {
                    out.push(base[bi]);
                    bi += 1;
                }
                (false, true) => {
                    out.push(base_len + delta_local[di]);
                    di += 1;
                }
                (true, true) => {
                    let bs = self.cols.score(base[bi] as usize);
                    let ds = ov.cols.score(delta_local[di] as usize);
                    if bs >= ds {
                        out.push(base[bi]);
                        bi += 1;
                    } else {
                        out.push(base_len + delta_local[di]);
                        di += 1;
                    }
                }
            }
        }
        out
    }

    /// Number of triples matching `key` (the `mᵢ` statistic of §3.1.1).
    pub fn cardinality(&self, key: PatternKey) -> usize {
        self.matches(key).len()
    }

    /// `true` if a triple with exactly these components is visible.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.score_of(s, p, o).is_some()
    }

    /// The raw score of an exact visible triple, if present. An overlay row
    /// shadows the base row for the same triple; a masked base row is
    /// absent.
    pub fn score_of(&self, s: TermId, p: TermId, o: TermId) -> Option<Score> {
        let packed = pack3(s, p, o);
        if let Some(ov) = &self.overlay {
            if let Some(local) = ov.indexes.spo.get(packed) {
                return Some(ov.cols.score(local as usize));
            }
            return match self.indexes.spo.get(packed) {
                Some(i) if !ov.is_masked(i) => Some(self.cols.score(i as usize)),
                _ => None,
            };
        }
        self.indexes
            .spo
            .get(packed)
            .map(|i| self.cols.score(i as usize))
    }

    /// Folds the overlay (if any) into a fresh, self-contained flat graph
    /// with identical visible triples and a [`flattened`] dictionary.
    /// Row order is base-then-delta, masked rows dropped; storage indexes
    /// are re-densified, which is invisible to queries (all ordering
    /// contracts are score-based). Flat graphs return a cheap `Arc`-sharing
    /// copy. This is the compaction primitive and the snapshot-writer
    /// normal form.
    ///
    /// [`flattened`]: specqp_common::Dictionary::flattened
    pub fn flattened(&self) -> KnowledgeGraph {
        match &self.overlay {
            None => KnowledgeGraph {
                dict: self.dict.flattened(),
                cols: Arc::clone(&self.cols),
                indexes: Arc::clone(&self.indexes),
                overlay: None,
            },
            Some(ov) => {
                let mut cols = TripleColumns::new();
                cols.reserve(self.len());
                for i in 0..self.cols.len() {
                    if !ov.is_masked(i as u32) {
                        cols.push(self.cols.triple(i), self.cols.score(i));
                    }
                }
                for i in 0..ov.cols.len() {
                    cols.push(ov.cols.triple(i), ov.cols.score(i));
                }
                let indexes = PatternIndexes::build(&cols);
                KnowledgeGraph::from_parts(self.dict.flattened(), cols, indexes)
            }
        }
    }

    /// Approximate resident bytes (diagnostics). Overlay versions count the
    /// shared base once plus their own segment.
    pub fn approx_bytes(&self) -> usize {
        self.cols.approx_bytes()
            + self.indexes.approx_bytes()
            + self.overlay.as_ref().map_or(0, |ov| ov.approx_bytes())
    }
}

/// Either a borrowed arena slice (flat graphs, and overlay lookups that
/// touch no delta rows or masks) or an owned merged list.
#[derive(Clone)]
enum Ids<'g> {
    Borrowed(&'g [u32]),
    Owned(Vec<u32>),
}

/// A score-descending list of triples matching one pattern.
///
/// This is the storage-level contract every operator relies on: positional
/// access is by *rank* (0 = best). `max_score` is the normalizer of Def. 5.
/// On flat graphs the list borrows the postings arena (zero-copy); on
/// overlay graphs it may own a merged base+delta id list — either way the
/// rank order is identical to what a from-scratch rebuild would produce.
#[derive(Clone)]
pub struct MatchList<'g> {
    graph: &'g KnowledgeGraph,
    ids: Ids<'g>,
}

impl<'g> MatchList<'g> {
    /// The id slice, whichever side owns it.
    #[inline]
    fn slice(&self) -> &[u32] {
        match &self.ids {
            Ids::Borrowed(s) => s,
            Ids::Owned(v) => v,
        }
    }

    /// Number of matches (`mᵢ`).
    pub fn len(&self) -> usize {
        self.slice().len()
    }

    /// `true` when no triple matches.
    pub fn is_empty(&self) -> bool {
        self.slice().is_empty()
    }

    /// Storage index of the match at `rank` (0 = highest score).
    #[inline]
    pub fn id_at(&self, rank: usize) -> u32 {
        self.slice()[rank]
    }

    /// The raw storage-index slice in rank order. Block scans slice this to
    /// gather whole batches of triples column-wise (see
    /// [`KnowledgeGraph::gather_into`]).
    #[inline]
    pub fn ids(&self) -> &[u32] {
        self.slice()
    }

    /// The triple at `rank`.
    #[inline]
    pub fn triple_at(&self, rank: usize) -> Triple {
        self.graph.triple(self.slice()[rank])
    }

    /// Raw score at `rank` (touches only the score column).
    #[inline]
    pub fn score_at(&self, rank: usize) -> Score {
        self.graph.score(self.slice()[rank])
    }

    /// The maximum raw score (score at rank 0), i.e. the Def.-5 normalizer
    /// `max_{t∈A(q)} S(t)`. Zero for empty lists.
    pub fn max_score(&self) -> Score {
        if self.is_empty() {
            Score::ZERO
        } else {
            self.score_at(0)
        }
    }

    /// Normalized score at `rank`: `S(t|q) = S(t)/max` ∈ \[0,1\] (Def. 5).
    /// Zero for an empty list.
    pub fn normalized_score_at(&self, rank: usize) -> Score {
        let max = self.max_score();
        if max == Score::ZERO {
            Score::ZERO
        } else {
            self.score_at(rank) / max.value()
        }
    }

    /// Iterates `(storage index, raw score)` in descending-score order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Score)> + '_ {
        let graph = self.graph;
        self.slice().iter().map(move |&i| (i, graph.score(i)))
    }

    /// Iterates the matching triples in descending-score order.
    pub fn iter_triples(&self) -> impl Iterator<Item = (Triple, Score)> + '_ {
        let graph = self.graph;
        self.slice()
            .iter()
            .map(move |&i| (graph.triple(i), graph.score(i)))
    }

    /// Sum of raw scores over ranks `0..=rank` (the `S_r` statistic).
    pub fn cumulative_score(&self, rank: usize) -> Score {
        self.slice()[..=rank]
            .iter()
            .map(|&i| self.graph.score(i))
            .sum()
    }

    /// Sum of all raw scores (`S_m`).
    pub fn total_score(&self) -> Score {
        self.iter().map(|(_, s)| s).sum()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g KnowledgeGraph {
        self.graph
    }
}

impl std::fmt::Debug for MatchList<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatchList(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KnowledgeGraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "type", "singer", 10.0);
        b.add("b", "type", "singer", 4.0);
        b.add("c", "type", "singer", 2.0);
        b.add("a", "type", "lyricist", 7.0);
        b.add("a", "plays", "guitar", 3.0);
        b.build()
    }

    #[test]
    fn po_lookup_sorted_and_normalized() {
        let kg = sample();
        let ty = kg.dictionary().lookup("type").unwrap();
        let singer = kg.dictionary().lookup("singer").unwrap();
        let m = kg.matches(PatternKey::po(ty, singer));
        assert_eq!(m.len(), 3);
        assert_eq!(m.score_at(0).value(), 10.0);
        assert_eq!(m.score_at(2).value(), 2.0);
        assert_eq!(m.max_score().value(), 10.0);
        assert_eq!(m.normalized_score_at(0).value(), 1.0);
        assert_eq!(m.normalized_score_at(1).value(), 0.4);
    }

    #[test]
    fn cumulative_and_total_scores() {
        let kg = sample();
        let ty = kg.dictionary().lookup("type").unwrap();
        let singer = kg.dictionary().lookup("singer").unwrap();
        let m = kg.matches(PatternKey::po(ty, singer));
        assert_eq!(m.cumulative_score(0).value(), 10.0);
        assert_eq!(m.cumulative_score(1).value(), 14.0);
        assert_eq!(m.total_score().value(), 16.0);
    }

    #[test]
    fn missing_key_gives_empty_list() {
        let kg = sample();
        let m = kg.matches(PatternKey::p_only(TermId(999)));
        assert!(m.is_empty());
        assert_eq!(m.max_score(), Score::ZERO);
    }

    #[test]
    fn every_signature_answers() {
        let kg = sample();
        let d = kg.dictionary();
        let (a, ty, singer) = (
            d.lookup("a").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("singer").unwrap(),
        );
        assert_eq!(kg.matches(PatternKey::spo(a, ty, singer)).len(), 1);
        assert_eq!(kg.matches(PatternKey::sp(a, ty)).len(), 2);
        assert_eq!(kg.matches(PatternKey::so(a, singer)).len(), 1);
        assert_eq!(kg.matches(PatternKey::po(ty, singer)).len(), 3);
        assert_eq!(kg.matches(PatternKey::s_only(a)).len(), 3);
        assert_eq!(kg.matches(PatternKey::p_only(ty)).len(), 4);
        assert_eq!(kg.matches(PatternKey::o_only(singer)).len(), 3);
        assert_eq!(kg.matches(PatternKey::any()).len(), 5);
    }

    #[test]
    fn spo_absent_triple_is_empty() {
        let kg = sample();
        let d = kg.dictionary();
        let (a, ty, guitar) = (
            d.lookup("a").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("guitar").unwrap(),
        );
        assert!(kg.matches(PatternKey::spo(a, ty, guitar)).is_empty());
        assert!(!kg.contains(a, ty, guitar));
        assert_eq!(kg.score_of(a, ty, guitar), None);
    }

    #[test]
    fn global_scan_is_score_descending() {
        let kg = sample();
        let all = kg.matches(PatternKey::any());
        let scores: Vec<f64> = all.iter().map(|(_, s)| s.value()).collect();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn columnar_accessors_agree_with_rows() {
        let kg = sample();
        let cols = kg.columns();
        assert_eq!(cols.len(), kg.len());
        for i in 0..kg.len() as u32 {
            let st = kg.scored(i);
            assert_eq!(st.triple, kg.triple(i));
            assert_eq!(st.score, kg.score(i));
            assert_eq!(cols.subjects()[i as usize], st.triple.s);
            assert_eq!(cols.scores()[i as usize], st.score);
        }
        assert_eq!(kg.iter_scored().count(), kg.len());
    }

    #[test]
    fn flat_flatten_is_identity() {
        let kg = sample();
        let flat = kg.flattened();
        assert!(!flat.has_overlay());
        assert_eq!(flat.len(), kg.len());
        assert_eq!(flat.dictionary().len(), kg.dictionary().len());
        let ty = flat.dictionary().lookup("type").unwrap();
        assert_eq!(flat.matches(PatternKey::p_only(ty)).len(), 4);
    }
}
