//! The immutable knowledge graph and its match-list access path.

use crate::columns::TripleColumns;
use crate::index::PatternIndexes;
use crate::pattern_key::{pack2, pack3, PatternKey, Signature};
use crate::triple::{ScoredTriple, Triple};
use specqp_common::Dictionary;
use specqp_common::{Score, TermId};

/// An immutable, fully indexed scored knowledge graph (Def. 1).
///
/// Build one with [`KnowledgeGraphBuilder`](crate::KnowledgeGraphBuilder),
/// or load one from a binary snapshot with
/// [`snapshot::load_snapshot`](crate::snapshot::load_snapshot).
/// All lookup methods return matches sorted by descending raw score.
///
/// Storage is columnar: the triple table is four parallel `s`/`p`/`o`/`score`
/// columns ([`TripleColumns`]), so score-only access paths (upper bounds,
/// normalizers) never touch the term columns.
#[derive(Debug)]
pub struct KnowledgeGraph {
    pub(crate) dict: Dictionary,
    pub(crate) cols: TripleColumns,
    pub(crate) indexes: PatternIndexes,
}

static EMPTY: [u32; 0] = [];

impl KnowledgeGraph {
    /// The term dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The triple components at storage index `i`.
    #[inline]
    pub fn triple(&self, i: u32) -> Triple {
        self.cols.triple(i as usize)
    }

    /// The triple at storage index `i` with its score.
    #[inline]
    pub fn scored(&self, i: u32) -> ScoredTriple {
        self.cols.scored(i as usize)
    }

    /// The columnar triple table.
    pub fn columns(&self) -> &TripleColumns {
        &self.cols
    }

    /// Iterates all triples with scores in storage order.
    pub fn iter_scored(&self) -> impl Iterator<Item = ScoredTriple> + '_ {
        self.cols.iter()
    }

    /// Raw score of the triple at storage index `i`.
    #[inline]
    pub fn score(&self, i: u32) -> Score {
        self.cols.score(i as usize)
    }

    /// Returns the score-descending [`MatchList`] for `key`.
    ///
    /// Fully bound keys yield a 0- or 1-element list; everything else is a
    /// posting-list lookup; the all-wildcard key returns the global list.
    pub fn matches(&self, key: PatternKey) -> MatchList<'_> {
        let idx = &self.indexes;
        let resolve = |r: Option<crate::index::PostingRange>| -> &[u32] {
            r.map(|r| idx.list(r)).unwrap_or(&EMPTY)
        };
        let ids: &[u32] = match key.signature() {
            Signature::Spo => {
                let (s, p, o) = (key.s.unwrap(), key.p.unwrap(), key.o.unwrap());
                match idx.spo.get(pack3(s, p, o)) {
                    Some(i) => {
                        // Return a 1-element slice borrowed from a per-call
                        // allocation-free path: we keep singleton lists in the
                        // `sp` index (s,p) filtered below instead. Simpler: use
                        // the (s,p) postings and filter on o lazily — but that
                        // breaks the "slice" contract. We store the singleton
                        // in the po postings and search it.
                        let list = resolve(idx.po.get(pack2(p, o)));
                        // Find position of `i` — lists are tiny for spo keys.
                        match list.iter().position(|&x| x == i) {
                            Some(pos) => &list[pos..=pos],
                            None => &EMPTY,
                        }
                    }
                    None => &EMPTY,
                }
            }
            Signature::SpX => resolve(idx.sp.get(pack2(key.s.unwrap(), key.p.unwrap()))),
            Signature::SxO => resolve(idx.so.get(pack2(key.s.unwrap(), key.o.unwrap()))),
            Signature::XpO => resolve(idx.po.get(pack2(key.p.unwrap(), key.o.unwrap()))),
            Signature::Sxx => resolve(idx.s.get(key.s.unwrap())),
            Signature::XpX => resolve(idx.p.get(key.p.unwrap())),
            Signature::XxO => resolve(idx.o.get(key.o.unwrap())),
            Signature::Xxx => &idx.all,
        };
        MatchList { graph: self, ids }
    }

    /// Number of triples matching `key` (the `mᵢ` statistic of §3.1.1).
    pub fn cardinality(&self, key: PatternKey) -> usize {
        self.matches(key).len()
    }

    /// `true` if a triple with exactly these components exists.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.indexes.spo.get(pack3(s, p, o)).is_some()
    }

    /// The raw score of an exact triple, if present.
    pub fn score_of(&self, s: TermId, p: TermId, o: TermId) -> Option<Score> {
        self.indexes
            .spo
            .get(pack3(s, p, o))
            .map(|i| self.cols.score(i as usize))
    }

    /// Approximate resident bytes (diagnostics).
    pub fn approx_bytes(&self) -> usize {
        self.cols.approx_bytes() + self.indexes.approx_bytes()
    }
}

/// A borrowed, score-descending list of triples matching one pattern.
///
/// This is the storage-level contract every operator relies on: positional
/// access is by *rank* (0 = best). `max_score` is the normalizer of Def. 5.
#[derive(Clone, Copy)]
pub struct MatchList<'g> {
    graph: &'g KnowledgeGraph,
    ids: &'g [u32],
}

impl<'g> MatchList<'g> {
    /// Number of matches (`mᵢ`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no triple matches.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Storage index of the match at `rank` (0 = highest score).
    #[inline]
    pub fn id_at(&self, rank: usize) -> u32 {
        self.ids[rank]
    }

    /// The raw storage-index slice in rank order — the arena range this
    /// list borrows. Block scans slice this to gather whole batches of
    /// triples column-wise (see [`TripleColumns::gather_into`]).
    #[inline]
    pub fn ids(&self) -> &'g [u32] {
        self.ids
    }

    /// The triple at `rank`.
    #[inline]
    pub fn triple_at(&self, rank: usize) -> Triple {
        self.graph.cols.triple(self.ids[rank] as usize)
    }

    /// Raw score at `rank` (touches only the score column).
    #[inline]
    pub fn score_at(&self, rank: usize) -> Score {
        self.graph.cols.score(self.ids[rank] as usize)
    }

    /// The maximum raw score (score at rank 0), i.e. the Def.-5 normalizer
    /// `max_{t∈A(q)} S(t)`. Zero for empty lists.
    pub fn max_score(&self) -> Score {
        if self.ids.is_empty() {
            Score::ZERO
        } else {
            self.score_at(0)
        }
    }

    /// Normalized score at `rank`: `S(t|q) = S(t)/max` ∈ \[0,1\] (Def. 5).
    /// Zero for an empty list.
    pub fn normalized_score_at(&self, rank: usize) -> Score {
        let max = self.max_score();
        if max == Score::ZERO {
            Score::ZERO
        } else {
            self.score_at(rank) / max.value()
        }
    }

    /// Iterates `(storage index, raw score)` in descending-score order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Score)> + 'g {
        let graph = self.graph;
        self.ids
            .iter()
            .map(move |&i| (i, graph.cols.score(i as usize)))
    }

    /// Iterates the matching triples in descending-score order.
    pub fn iter_triples(&self) -> impl Iterator<Item = (Triple, Score)> + 'g {
        let graph = self.graph;
        self.ids
            .iter()
            .map(move |&i| (graph.cols.triple(i as usize), graph.cols.score(i as usize)))
    }

    /// Sum of raw scores over ranks `0..=rank` (the `S_r` statistic).
    pub fn cumulative_score(&self, rank: usize) -> Score {
        self.ids[..=rank]
            .iter()
            .map(|&i| self.graph.cols.score(i as usize))
            .sum()
    }

    /// Sum of all raw scores (`S_m`).
    pub fn total_score(&self) -> Score {
        self.iter().map(|(_, s)| s).sum()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g KnowledgeGraph {
        self.graph
    }
}

impl std::fmt::Debug for MatchList<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatchList(len={})", self.ids.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KnowledgeGraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "type", "singer", 10.0);
        b.add("b", "type", "singer", 4.0);
        b.add("c", "type", "singer", 2.0);
        b.add("a", "type", "lyricist", 7.0);
        b.add("a", "plays", "guitar", 3.0);
        b.build()
    }

    #[test]
    fn po_lookup_sorted_and_normalized() {
        let kg = sample();
        let ty = kg.dictionary().lookup("type").unwrap();
        let singer = kg.dictionary().lookup("singer").unwrap();
        let m = kg.matches(PatternKey::po(ty, singer));
        assert_eq!(m.len(), 3);
        assert_eq!(m.score_at(0).value(), 10.0);
        assert_eq!(m.score_at(2).value(), 2.0);
        assert_eq!(m.max_score().value(), 10.0);
        assert_eq!(m.normalized_score_at(0).value(), 1.0);
        assert_eq!(m.normalized_score_at(1).value(), 0.4);
    }

    #[test]
    fn cumulative_and_total_scores() {
        let kg = sample();
        let ty = kg.dictionary().lookup("type").unwrap();
        let singer = kg.dictionary().lookup("singer").unwrap();
        let m = kg.matches(PatternKey::po(ty, singer));
        assert_eq!(m.cumulative_score(0).value(), 10.0);
        assert_eq!(m.cumulative_score(1).value(), 14.0);
        assert_eq!(m.total_score().value(), 16.0);
    }

    #[test]
    fn missing_key_gives_empty_list() {
        let kg = sample();
        let m = kg.matches(PatternKey::p_only(TermId(999)));
        assert!(m.is_empty());
        assert_eq!(m.max_score(), Score::ZERO);
    }

    #[test]
    fn every_signature_answers() {
        let kg = sample();
        let d = kg.dictionary();
        let (a, ty, singer) = (
            d.lookup("a").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("singer").unwrap(),
        );
        assert_eq!(kg.matches(PatternKey::spo(a, ty, singer)).len(), 1);
        assert_eq!(kg.matches(PatternKey::sp(a, ty)).len(), 2);
        assert_eq!(kg.matches(PatternKey::so(a, singer)).len(), 1);
        assert_eq!(kg.matches(PatternKey::po(ty, singer)).len(), 3);
        assert_eq!(kg.matches(PatternKey::s_only(a)).len(), 3);
        assert_eq!(kg.matches(PatternKey::p_only(ty)).len(), 4);
        assert_eq!(kg.matches(PatternKey::o_only(singer)).len(), 3);
        assert_eq!(kg.matches(PatternKey::any()).len(), 5);
    }

    #[test]
    fn spo_absent_triple_is_empty() {
        let kg = sample();
        let d = kg.dictionary();
        let (a, ty, guitar) = (
            d.lookup("a").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("guitar").unwrap(),
        );
        assert!(kg.matches(PatternKey::spo(a, ty, guitar)).is_empty());
        assert!(!kg.contains(a, ty, guitar));
        assert_eq!(kg.score_of(a, ty, guitar), None);
    }

    #[test]
    fn global_scan_is_score_descending() {
        let kg = sample();
        let all = kg.matches(PatternKey::any());
        let scores: Vec<f64> = all.iter().map(|(_, s)| s.value()).collect();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn columnar_accessors_agree_with_rows() {
        let kg = sample();
        let cols = kg.columns();
        assert_eq!(cols.len(), kg.len());
        for i in 0..kg.len() as u32 {
            let st = kg.scored(i);
            assert_eq!(st.triple, kg.triple(i));
            assert_eq!(st.score, kg.score(i));
            assert_eq!(cols.subjects()[i as usize], st.triple.s);
            assert_eq!(cols.scores()[i as usize], st.score);
        }
        assert_eq!(kg.iter_scored().count(), kg.len());
    }
}
