//! Construction of [`KnowledgeGraph`]s.

use crate::columns::TripleColumns;
use crate::index::PatternIndexes;
use crate::store::KnowledgeGraph;
use crate::triple::Triple;
use specqp_common::Dictionary;
use specqp_common::{FxHashMap, Score, TermId};

/// How duplicate triples (same 〈s,p,o〉 inserted twice) combine their scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep the larger score (default; matches "score = popularity").
    #[default]
    Max,
    /// Add the scores (matches "score = occurrence count", the XKG text
    /// triples whose score is the number of times the triple was extracted).
    Sum,
    /// Keep the score seen last.
    Replace,
}

/// Accumulates triples and produces an immutable, indexed
/// [`KnowledgeGraph`].
#[derive(Default)]
pub struct KnowledgeGraphBuilder {
    dict: Dictionary,
    cols: TripleColumns,
    seen: FxHashMap<Triple, u32>,
    policy: DuplicatePolicy,
}

impl KnowledgeGraphBuilder {
    /// New builder with the [`DuplicatePolicy::Max`] policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// New builder with an explicit duplicate policy.
    pub fn with_policy(policy: DuplicatePolicy) -> Self {
        KnowledgeGraphBuilder {
            policy,
            ..Self::default()
        }
    }

    /// Pre-allocates space for `n` triples.
    pub fn reserve(&mut self, n: usize) {
        self.cols.reserve(n);
    }

    /// Interns a term without adding a triple (useful for queries that
    /// mention terms the data may not contain).
    pub fn intern(&mut self, name: &str) -> TermId {
        self.dict.intern(name)
    }

    /// Adds a triple by term names. Returns the ids assigned.
    pub fn add(&mut self, s: &str, p: &str, o: &str, score: f64) -> (TermId, TermId, TermId) {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.add_ids(s, p, o, Score::new(score));
        (s, p, o)
    }

    /// Adds a triple by pre-interned ids.
    pub fn add_ids(&mut self, s: TermId, p: TermId, o: TermId, score: Score) {
        let t = Triple::new(s, p, o);
        match self.seen.get(&t) {
            Some(&i) => {
                let old = self.cols.score(i as usize);
                self.cols.set_score(
                    i as usize,
                    match self.policy {
                        DuplicatePolicy::Max => old.max(score),
                        DuplicatePolicy::Sum => old + score,
                        DuplicatePolicy::Replace => score,
                    },
                );
            }
            None => {
                let i = self.cols.len() as u32;
                self.cols.push(t, score);
                self.seen.insert(t, i);
            }
        }
    }

    /// Number of distinct triples added so far.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Read access to the dictionary built so far.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Finalizes the graph: builds every pattern index.
    pub fn build(self) -> KnowledgeGraph {
        let indexes = PatternIndexes::build(&self.cols);
        KnowledgeGraph::from_parts(self.dict, self.cols, indexes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternKey;

    #[test]
    fn duplicate_max_policy() {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "p", "b", 3.0);
        b.add("a", "p", "b", 5.0);
        b.add("a", "p", "b", 1.0);
        let kg = b.build();
        assert_eq!(kg.len(), 1);
        assert_eq!(kg.score(0).value(), 5.0);
    }

    #[test]
    fn duplicate_sum_policy() {
        let mut b = KnowledgeGraphBuilder::with_policy(DuplicatePolicy::Sum);
        b.add("a", "p", "b", 3.0);
        b.add("a", "p", "b", 5.0);
        let kg = b.build();
        assert_eq!(kg.score(0).value(), 8.0);
    }

    #[test]
    fn duplicate_replace_policy() {
        let mut b = KnowledgeGraphBuilder::with_policy(DuplicatePolicy::Replace);
        b.add("a", "p", "b", 3.0);
        b.add("a", "p", "b", 1.0);
        let kg = b.build();
        assert_eq!(kg.score(0).value(), 1.0);
    }

    #[test]
    fn intern_without_triple() {
        let mut b = KnowledgeGraphBuilder::new();
        let id = b.intern("ghost");
        let kg = b.build();
        assert_eq!(kg.dictionary().lookup("ghost"), Some(id));
        assert!(kg.matches(PatternKey::s_only(id)).is_empty());
    }

    #[test]
    fn build_indexes_consistent_with_data() {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..100 {
            b.add(&format!("e{i}"), "p", &format!("o{}", i % 5), i as f64);
        }
        let kg = b.build();
        let p = kg.dictionary().lookup("p").unwrap();
        assert_eq!(kg.cardinality(PatternKey::p_only(p)), 100);
        let o0 = kg.dictionary().lookup("o0").unwrap();
        let m = kg.matches(PatternKey::po(p, o0));
        assert_eq!(m.len(), 20);
        // Check descending order.
        for r in 1..m.len() {
            assert!(m.score_at(r - 1) >= m.score_at(r));
        }
    }
}
