//! Loading and saving scored triples.
//!
//! The on-disk format is a scored TSV — one triple per line:
//!
//! ```text
//! subject<TAB>predicate<TAB>object<TAB>score
//! ```
//!
//! Lines starting with `#` and blank lines are skipped; the score column is
//! optional and defaults to 1.0 (so plain three-column dumps of unscored
//! KGs load too). This covers both of the paper's data shapes — YAGO-style
//! entity triples with inlink counts and tweet–tag triples with retweet
//! counts — without committing to a full RDF serialization parser.

use crate::builder::{DuplicatePolicy, KnowledgeGraphBuilder};
use crate::store::KnowledgeGraph;
use specqp_common::{Error, Result};
use std::io::{BufRead, Write};

/// Reads a scored-TSV stream into a builder (so callers can keep adding
/// triples or pick a duplicate policy first).
pub fn read_tsv_into(reader: impl BufRead, builder: &mut KnowledgeGraphBuilder) -> Result<usize> {
    let mut added = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::Parse(format!("line {}: {e}", lineno + 1)))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut cols = trimmed.split('\t');
        let (Some(s), Some(p), Some(o)) = (cols.next(), cols.next(), cols.next()) else {
            return Err(Error::Parse(format!(
                "line {}: expected at least 3 tab-separated columns",
                lineno + 1
            )));
        };
        let score = match cols.next() {
            None | Some("") => 1.0,
            Some(raw) => raw.trim().parse::<f64>().map_err(|e| {
                Error::Parse(format!("line {}: bad score {raw:?}: {e}", lineno + 1))
            })?,
        };
        if !score.is_finite() || score < 0.0 {
            return Err(Error::Parse(format!(
                "line {}: score must be finite and non-negative, got {score}",
                lineno + 1
            )));
        }
        builder.add(s.trim(), p.trim(), o.trim(), score);
        added += 1;
    }
    Ok(added)
}

/// Reads a scored-TSV stream into a fresh graph (duplicates keep the max
/// score, matching [`DuplicatePolicy::Max`]).
pub fn read_tsv(reader: impl BufRead) -> Result<KnowledgeGraph> {
    let mut b = KnowledgeGraphBuilder::with_policy(DuplicatePolicy::Max);
    read_tsv_into(reader, &mut b)?;
    Ok(b.build())
}

/// Writes the graph as scored TSV, one triple per storage row, resolving
/// ids through the graph's dictionary.
pub fn write_tsv(graph: &KnowledgeGraph, mut writer: impl Write) -> Result<()> {
    let dict = graph.dictionary();
    for st in graph.triples() {
        writeln!(
            writer,
            "{}\t{}\t{}\t{}",
            dict.name_or_unknown(st.triple.s),
            dict.name_or_unknown(st.triple.p),
            dict.name_or_unknown(st.triple.o),
            st.score.value(),
        )
        .map_err(|e| Error::Internal(format!("write failed: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternKey;

    #[test]
    fn load_with_scores_and_comments() {
        let data = "\
# a comment
alice\trdf:type\tsinger\t12.5

bob\trdf:type\tsinger\t3
carol\trdf:type\tsinger
";
        let g = read_tsv(data.as_bytes()).unwrap();
        assert_eq!(g.len(), 3);
        let d = g.dictionary();
        let ty = d.lookup("rdf:type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let list = g.matches(PatternKey::po(ty, singer));
        assert_eq!(list.score_at(0).value(), 12.5);
        // Missing score column defaults to 1.0.
        assert_eq!(list.score_at(2).value(), 1.0);
    }

    #[test]
    fn roundtrip_preserves_triples_and_scores() {
        let data = "a\tp\tb\t2\nb\tp\tc\t7\na\tq\tc\t1\n";
        let g = read_tsv(data.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_tsv(&g, &mut out).unwrap();
        let g2 = read_tsv(out.as_slice()).unwrap();
        assert_eq!(g.len(), g2.len());
        for st in g.triples() {
            let d = g.dictionary();
            let d2 = g2.dictionary();
            let s = d2.lookup(d.name_or_unknown(st.triple.s)).unwrap();
            let p = d2.lookup(d.name_or_unknown(st.triple.p)).unwrap();
            let o = d2.lookup(d.name_or_unknown(st.triple.o)).unwrap();
            assert_eq!(g2.score_of(s, p, o), Some(st.score));
        }
    }

    #[test]
    fn duplicate_lines_keep_max_score() {
        let data = "a\tp\tb\t2\na\tp\tb\t9\na\tp\tb\t4\n";
        let g = read_tsv(data.as_bytes()).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.triples()[0].score.value(), 9.0);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let e = read_tsv("just-one-column\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = read_tsv("a\tp\tb\tNaN\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = read_tsv("a\tp\tb\t-3\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("non-negative"), "{e}");
    }

    #[test]
    fn read_into_existing_builder_composes() {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("x", "p", "y", 1.0);
        let n = read_tsv_into("a\tp\tb\t2\n".as_bytes(), &mut b).unwrap();
        assert_eq!(n, 1);
        let g = b.build();
        assert_eq!(g.len(), 2);
    }
}
