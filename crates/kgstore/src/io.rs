//! Loading and saving scored triples.
//!
//! The on-disk format is a scored TSV — one triple per line:
//!
//! ```text
//! subject<TAB>predicate<TAB>object<TAB>score
//! ```
//!
//! Lines starting with `#` and blank lines are skipped; the score column is
//! optional and defaults to 1.0 (so plain three-column dumps of unscored
//! KGs load too). CRLF line endings are tolerated. Scores must be finite
//! and non-negative — NaN, infinities and negative values are rejected with
//! a line-numbered error. This covers both of the paper's data shapes —
//! YAGO-style entity triples with inlink counts and tweet–tag triples with
//! retweet counts — without committing to a full RDF serialization parser.

use crate::builder::{DuplicatePolicy, KnowledgeGraphBuilder};
use crate::store::KnowledgeGraph;
use specqp_common::{Error, Result};
use std::io::{BufRead, Write};

/// Reads a scored-TSV stream into a builder (so callers can keep adding
/// triples or pick a duplicate policy first).
pub fn read_tsv_into(reader: impl BufRead, builder: &mut KnowledgeGraphBuilder) -> Result<usize> {
    let mut added = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::Parse(format!("line {}: {e}", lineno + 1)))?;
        // CRLF dumps (Windows exports, HTTP bodies) are tolerated:
        // `BufRead::lines` strips a trailing CRLF pair, and `trim` catches
        // any stray `\r` — covered by the crlf_line_endings_tolerated test.
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut cols = trimmed.split('\t');
        let (Some(s), Some(p), Some(o)) = (cols.next(), cols.next(), cols.next()) else {
            return Err(Error::Parse(format!(
                "line {}: expected at least 3 tab-separated columns",
                lineno + 1
            )));
        };
        let score = match cols.next() {
            None | Some("") => 1.0,
            Some(raw) => raw.trim().parse::<f64>().map_err(|e| {
                Error::Parse(format!("line {}: bad score {raw:?}: {e}", lineno + 1))
            })?,
        };
        if !score.is_finite() || score < 0.0 {
            return Err(Error::Parse(format!(
                "line {}: score must be finite and non-negative, got {score}",
                lineno + 1
            )));
        }
        builder.add(s.trim(), p.trim(), o.trim(), score);
        added += 1;
    }
    Ok(added)
}

/// Reads a scored-TSV stream into a fresh graph (duplicates keep the max
/// score, matching [`DuplicatePolicy::Max`]).
pub fn read_tsv(reader: impl BufRead) -> Result<KnowledgeGraph> {
    let mut b = KnowledgeGraphBuilder::with_policy(DuplicatePolicy::Max);
    read_tsv_into(reader, &mut b)?;
    Ok(b.build())
}

/// Writes the graph as scored TSV, one triple per storage row, resolving
/// ids through the graph's dictionary.
pub fn write_tsv(graph: &KnowledgeGraph, mut writer: impl Write) -> Result<()> {
    let dict = graph.dictionary();
    for st in graph.iter_scored() {
        writeln!(
            writer,
            "{}\t{}\t{}\t{}",
            dict.name_or_unknown(st.triple.s),
            dict.name_or_unknown(st.triple.p),
            dict.name_or_unknown(st.triple.o),
            st.score.value(),
        )
        .map_err(|e| Error::Internal(format!("write failed: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternKey;

    #[test]
    fn load_with_scores_and_comments() {
        let data = "\
# a comment
alice\trdf:type\tsinger\t12.5

bob\trdf:type\tsinger\t3
carol\trdf:type\tsinger
";
        let g = read_tsv(data.as_bytes()).unwrap();
        assert_eq!(g.len(), 3);
        let d = g.dictionary();
        let ty = d.lookup("rdf:type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let list = g.matches(PatternKey::po(ty, singer));
        assert_eq!(list.score_at(0).value(), 12.5);
        // Missing score column defaults to 1.0.
        assert_eq!(list.score_at(2).value(), 1.0);
    }

    #[test]
    fn roundtrip_preserves_triples_and_scores() {
        let data = "a\tp\tb\t2\nb\tp\tc\t7\na\tq\tc\t1\n";
        let g = read_tsv(data.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_tsv(&g, &mut out).unwrap();
        let g2 = read_tsv(out.as_slice()).unwrap();
        assert_eq!(g.len(), g2.len());
        for st in g.iter_scored() {
            let d = g.dictionary();
            let d2 = g2.dictionary();
            let s = d2.lookup(d.name_or_unknown(st.triple.s)).unwrap();
            let p = d2.lookup(d.name_or_unknown(st.triple.p)).unwrap();
            let o = d2.lookup(d.name_or_unknown(st.triple.o)).unwrap();
            assert_eq!(g2.score_of(s, p, o), Some(st.score));
        }
    }

    #[test]
    fn duplicate_lines_keep_max_score() {
        let data = "a\tp\tb\t2\na\tp\tb\t9\na\tp\tb\t4\n";
        let g = read_tsv(data.as_bytes()).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.score(0).value(), 9.0);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let e = read_tsv("just-one-column\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = read_tsv("a\tp\tb\tNaN\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = read_tsv("a\tp\tb\t-3\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("non-negative"), "{e}");
    }

    #[test]
    fn nan_and_infinite_scores_rejected_with_line_number() {
        // NaN parses as a float, so it must be caught by the finiteness
        // check, not the parse — and still carry the 1-based line number.
        for bad in ["NaN", "nan", "-NaN", "inf", "-inf", "infinity"] {
            let data = format!("ok\tp\to\t1\na\tp\tb\t{bad}\n");
            let e = read_tsv(data.as_bytes()).unwrap_err();
            let msg = e.to_string();
            assert!(msg.contains("line 2"), "{bad}: {msg}");
            assert!(msg.contains("finite"), "{bad}: {msg}");
        }
    }

    #[test]
    fn negative_scores_rejected_with_line_number() {
        let e = read_tsv("a\tp\tb\t5\nc\tp\td\t-0.5\n".as_bytes()).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("non-negative"), "{msg}");
    }

    #[test]
    fn crlf_line_endings_tolerated() {
        // 4-column, 3-column and comment/blank lines, all CRLF-terminated.
        let data = "# comment\r\na\tp\tb\t2.5\r\n\r\nc\tp\td\r\n";
        let g = read_tsv(data.as_bytes()).unwrap();
        assert_eq!(g.len(), 2);
        let d = g.dictionary();
        let (a, p, b) = (
            d.lookup("a").unwrap(),
            d.lookup("p").unwrap(),
            d.lookup("b").unwrap(),
        );
        assert_eq!(g.score_of(a, p, b).unwrap().value(), 2.5);
        // The 3-column CRLF line must not grow a "d\r" term.
        assert!(d.lookup("d").is_some());
        assert!(d.lookup("d\r").is_none());
        let (c, dd) = (d.lookup("c").unwrap(), d.lookup("d").unwrap());
        assert_eq!(g.score_of(c, p, dd).unwrap().value(), 1.0);
    }

    #[test]
    fn three_column_lines_default_score_to_one() {
        let g = read_tsv("x\tq\ty\nx\tq\tz\t\n".as_bytes()).unwrap();
        assert_eq!(g.len(), 2);
        for st in g.iter_scored() {
            assert_eq!(st.score.value(), 1.0);
        }
    }

    #[test]
    fn read_into_existing_builder_composes() {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("x", "p", "y", 1.0);
        let n = read_tsv_into("a\tp\tb\t2\n".as_bytes(), &mut b).unwrap();
        assert_eq!(n, 1);
        let g = b.build();
        assert_eq!(g.len(), 2);
    }
}
