//! The 〈s,p,o〉 triple data model.

use specqp_common::{Score, TermId};
use std::fmt;

/// An RDF triple 〈subject, predicate, object〉 over dictionary ids
/// (Def. 1 of the paper: `t ∈ E×P×E`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject term.
    pub s: TermId,
    /// Predicate term.
    pub p: TermId,
    /// Object term.
    pub o: TermId,
}

impl Triple {
    /// Creates a triple from its three components.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} {} {}>", self.s, self.p, self.o)
    }
}

/// A triple together with its score `S(t)` — confidence / popularity
/// (inlink count, occurrence frequency, retweet count, …).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScoredTriple {
    /// The triple.
    pub triple: Triple,
    /// The raw (un-normalized) score `S(t)`.
    pub score: Score,
}

impl ScoredTriple {
    /// Creates a scored triple.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId, score: Score) -> Self {
        ScoredTriple {
            triple: Triple::new(s, p, o),
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_equality_and_hash() {
        use specqp_common::FxHashSet;
        let a = Triple::new(TermId(1), TermId(2), TermId(3));
        let b = Triple::new(TermId(1), TermId(2), TermId(3));
        let c = Triple::new(TermId(3), TermId(2), TermId(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = FxHashSet::default();
        set.insert(a);
        assert!(!set.insert(b));
        assert!(set.insert(c));
    }

    #[test]
    fn scored_triple_carries_score() {
        let st = ScoredTriple::new(TermId(1), TermId(2), TermId(3), Score::new(5.0));
        assert_eq!(st.score.value(), 5.0);
        assert_eq!(st.triple.s, TermId(1));
    }

    #[test]
    fn debug_format() {
        let t = Triple::new(TermId(1), TermId(2), TermId(3));
        assert_eq!(format!("{t:?}"), "<1 2 3>");
    }
}
