//! Versioned binary KG snapshots.
//!
//! A snapshot serializes everything [`KnowledgeGraphBuilder::build`](crate::KnowledgeGraphBuilder::build) spends
//! its time computing — the interned dictionary, the four triple columns and
//! all eight prebuilt pattern indexes with their score-sorted posting lists —
//! into one checksummed file.
//!
//! # Layout (format version 2)
//!
//! All integers are little-endian. Every section starts on an 8-byte
//! boundary and is zero-padded to an 8-byte multiple, and inside the COLS
//! and IDX sections each fixed-stride column is padded so 8-byte-wide
//! columns stay naturally aligned — the file layout is exactly the
//! in-memory layout of the sorted-array index (`PostingMap`
//! columns), so loading is a sequence of bulk column copies with **no
//! per-entry hashing, insertion or re-sorting**: a page-in-style load
//! rather than a rebuild.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic      8 B   b"SPECQPKG"                                 │
//! │ version    u32   format version (currently 2)                │
//! │ sections   u32   section count                               │
//! │ table      n × (id: u32, reserved: u32, len: u64)            │
//! │                  — len is the unpadded body length; bodies   │
//! │                  are stored back to back, each zero-padded   │
//! │                  to the next 8-byte boundary                 │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section 1  DICT  term count, then (len: u32, utf-8 bytes)    │
//! │ section 2  COLS  row count n, then s[n] p[n] o[n] (u32,      │
//! │                  padded to 8) and score[n] (f64 bits)        │
//! │ section 3  IDX   spo key/val columns, sp/so/po and s/p/o     │
//! │                  key/start/len columns, postings arena,      │
//! │                  global score-sorted list — all fixed-stride │
//! ├──────────────────────────────────────────────────────────────┤
//! │ checksum   u64   8-lane word-wise FNV-1a (fnv1a_64_lanes)    │
//! │                  over every preceding byte                   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! # Version policy
//!
//! [`FORMAT_VERSION`] is the version written; readers accept every version
//! in `1..=FORMAT_VERSION` and reject newer files with
//! [`SnapshotError::UnsupportedVersion`]. Version 1 (12-byte table
//! entries, unaligned sections, per-entry index encoding) is still read in
//! full: its index entries were written key-sorted, so the v1 decoder fills
//! the same sorted-array representation sequentially. [`write_snapshot_v1`]
//! keeps the v1 writer available for compatibility tests and load
//! benchmarks. Unknown trailing sections are skipped on read, so additive
//! extensions do not need a version bump; any change to an existing
//! section's encoding does.
//!
//! **Each version owns its checksum.** The trailer function is part of the
//! format version, not a negotiable field: v1 trailers verify with the
//! single-chain [`fnv1a_64_words`], v2 trailers with the 8-lane
//! [`fnv1a_64_lanes`] (on multi-megabyte images the single chain is bound
//! by multiply latency and would dominate the page-in-style load). A future
//! v3 that wants a different checksum bumps the version rather than adding
//! a "checksum kind" byte — old readers then reject the file up front with
//! a version error instead of a misleading checksum mismatch, and the
//! reader's dispatch stays a single `version >= N` branch with no
//! attacker-controllable algorithm choice in the file itself.
//!
//! # Live graphs
//!
//! Snapshots always describe a **flat** graph. Writing a graph that carries
//! a delta overlay (see [`crate::live`]) first folds the overlay into a
//! fresh base via [`KnowledgeGraph::flattened`] — the file format has no
//! notion of masks or delta segments, which keeps every reader version
//! oblivious to the write path.
//!
//! Every corruption mode maps to a typed [`SnapshotError`] — truncation,
//! foreign files, version skew, checksum mismatch and structural
//! inconsistencies all return errors, never panic.

use crate::columns::TripleColumns;
use crate::index::{PatternIndexes, PostingMap, PostingRange, TripleMap};
use crate::store::KnowledgeGraph;
use specqp_common::{
    fnv1a_64_lanes, fnv1a_64_words, Dictionary, Result, Score, SnapshotError, TermId,
};
use std::path::Path;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SPECQPKG";
/// Highest snapshot format version this build reads and the version it
/// writes.
pub const FORMAT_VERSION: u32 = 2;

const SECTION_DICT: u32 = 1;
const SECTION_COLS: u32 = 2;
const SECTION_IDX: u32 = 3;

/// Rounds `n` up to the next multiple of 8.
#[inline]
fn pad8_len(n: usize) -> usize {
    n.div_ceil(8) * 8
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Zero-pads `buf` to the next 8-byte boundary (section bodies start
/// 8-aligned in the file, so buffer-local alignment is file alignment).
fn pad8(buf: &mut Vec<u8>) {
    buf.resize(pad8_len(buf.len()), 0);
}

fn encode_dict(dict: &Dictionary) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, dict.len() as u64);
    for (_, name) in dict.iter() {
        put_u32(&mut buf, name.len() as u32);
        buf.extend_from_slice(name.as_bytes());
    }
    buf
}

fn encode_cols(cols: &TripleColumns, align: bool) -> Vec<u8> {
    let n = cols.len();
    let mut buf = Vec::with_capacity(8 + n * 20 + 8);
    put_u64(&mut buf, n as u64);
    for &t in cols.subjects() {
        put_u32(&mut buf, t.0);
    }
    for &t in cols.predicates() {
        put_u32(&mut buf, t.0);
    }
    for &t in cols.objects() {
        put_u32(&mut buf, t.0);
    }
    if align {
        // Keep the f64-bits column 8-aligned behind the three u32 columns.
        pad8(&mut buf);
    }
    for &s in cols.scores() {
        put_u64(&mut buf, s.value().to_bits());
    }
    buf
}

/// Version-2 index section: every map is written as its flat key / start /
/// len columns (keys strictly ascending by construction), then the shared
/// postings arena and the global list. Fixed strides throughout; 8-byte
/// columns are kept aligned with explicit padding.
fn encode_idx(idx: &PatternIndexes) -> Vec<u8> {
    let mut buf = Vec::new();

    put_u64(&mut buf, idx.spo.len() as u64);
    for &k in &idx.spo.keys {
        put_u128(&mut buf, k);
    }
    for &v in &idx.spo.vals {
        put_u32(&mut buf, v);
    }
    pad8(&mut buf);

    let mut pair = |map: &PostingMap<u64>| {
        put_u64(&mut buf, map.len() as u64);
        for &k in &map.keys {
            put_u64(&mut buf, k);
        }
        for &s in &map.starts {
            put_u64(&mut buf, s);
        }
        for &l in &map.lens {
            put_u32(&mut buf, l);
        }
        pad8(&mut buf);
    };
    pair(&idx.sp);
    pair(&idx.so);
    pair(&idx.po);

    let mut single = |map: &PostingMap<TermId>| {
        put_u64(&mut buf, map.len() as u64);
        for &k in &map.keys {
            put_u32(&mut buf, k.0);
        }
        pad8(&mut buf);
        for &s in &map.starts {
            put_u64(&mut buf, s);
        }
        for &l in &map.lens {
            put_u32(&mut buf, l);
        }
        pad8(&mut buf);
    };
    single(&idx.s);
    single(&idx.p);
    single(&idx.o);

    put_u64(&mut buf, idx.postings.len() as u64);
    for &i in &idx.postings {
        put_u32(&mut buf, i);
    }
    pad8(&mut buf);

    put_u64(&mut buf, idx.all.len() as u64);
    for &i in &idx.all {
        put_u32(&mut buf, i);
    }
    buf
}

/// Version-1 index section: map entries with inline posting lists, written
/// key-sorted. Kept for compatibility tests and v1-vs-v2 load benchmarks.
fn encode_idx_v1(idx: &PatternIndexes) -> Vec<u8> {
    let mut buf = Vec::new();

    put_u64(&mut buf, idx.spo.len() as u64);
    for (&k, &i) in idx.spo.keys.iter().zip(&idx.spo.vals) {
        put_u32(&mut buf, (k >> 64) as u32);
        put_u32(&mut buf, (k >> 32) as u32);
        put_u32(&mut buf, k as u32);
        put_u32(&mut buf, i);
    }

    let mut pair = |map: &PostingMap<u64>| {
        put_u64(&mut buf, map.len() as u64);
        for ((&key, &start), &len) in map.keys.iter().zip(&map.starts).zip(&map.lens) {
            put_u64(&mut buf, key);
            put_u32(&mut buf, len);
            for &i in idx.list(PostingRange { start, len }) {
                put_u32(&mut buf, i);
            }
        }
    };
    pair(&idx.sp);
    pair(&idx.so);
    pair(&idx.po);

    let mut single = |map: &PostingMap<TermId>| {
        put_u64(&mut buf, map.len() as u64);
        for ((&key, &start), &len) in map.keys.iter().zip(&map.starts).zip(&map.lens) {
            put_u32(&mut buf, key.0);
            put_u32(&mut buf, len);
            for &i in idx.list(PostingRange { start, len }) {
                put_u32(&mut buf, i);
            }
        }
    };
    single(&idx.s);
    single(&idx.p);
    single(&idx.o);

    put_u64(&mut buf, idx.all.len() as u64);
    for &i in &idx.all {
        put_u32(&mut buf, i);
    }
    buf
}

/// Serializes `graph` into an in-memory snapshot image (format version 2).
///
/// A graph carrying a live-write overlay is flattened first (snapshots are
/// always flat; see the module docs), so the image round-trips to the same
/// visible triples under a compacted id space.
pub fn write_snapshot(graph: &KnowledgeGraph) -> Vec<u8> {
    if graph.has_overlay() {
        return write_snapshot(&graph.flattened());
    }
    let sections = [
        (SECTION_DICT, encode_dict(&graph.dict)),
        (SECTION_COLS, encode_cols(&graph.cols, true)),
        (SECTION_IDX, encode_idx(&graph.indexes)),
    ];
    let payload_len: usize = sections.iter().map(|(_, b)| pad8_len(b.len())).sum();
    let mut out = Vec::with_capacity(16 + sections.len() * 16 + payload_len + 8);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, sections.len() as u32);
    for (id, body) in &sections {
        put_u32(&mut out, *id);
        put_u32(&mut out, 0); // reserved — keeps table entries 16 B / 8-aligned
        put_u64(&mut out, body.len() as u64);
    }
    for (_, body) in &sections {
        out.extend_from_slice(body);
        pad8(&mut out);
    }
    // The v2 trailer uses the 8-lane word FNV: on the multi-megabyte images
    // this section layout targets, the single-chain variant is bound by
    // multiply latency and would dominate the whole page-in-style load.
    let checksum = fnv1a_64_lanes(&out);
    put_u64(&mut out, checksum);
    out
}

/// Serializes `graph` into a **format version 1** snapshot image (12-byte
/// table entries, unaligned back-to-back sections, per-entry index
/// encoding). Current readers accept it; kept so compatibility tests and
/// the bench probe can exercise the v1 decode path against real bytes.
/// Overlay graphs are flattened first, like [`write_snapshot`].
pub fn write_snapshot_v1(graph: &KnowledgeGraph) -> Vec<u8> {
    if graph.has_overlay() {
        return write_snapshot_v1(&graph.flattened());
    }
    let sections = [
        (SECTION_DICT, encode_dict(&graph.dict)),
        (SECTION_COLS, encode_cols(&graph.cols, false)),
        (SECTION_IDX, encode_idx_v1(&graph.indexes)),
    ];
    let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(16 + sections.len() * 12 + payload_len + 8);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, 1);
    put_u32(&mut out, sections.len() as u32);
    for (id, body) in &sections {
        put_u32(&mut out, *id);
        put_u64(&mut out, body.len() as u64);
    }
    for (_, body) in &sections {
        out.extend_from_slice(body);
    }
    let checksum = fnv1a_64_words(&out);
    put_u64(&mut out, checksum);
    out
}

/// Serializes `graph` to a snapshot file at `path`.
pub fn save_snapshot(graph: &KnowledgeGraph, path: impl AsRef<Path>) -> Result<()> {
    let bytes = write_snapshot(graph);
    std::fs::write(path.as_ref(), bytes)
        .map_err(|e| SnapshotError::Io(format!("writing {}: {e}", path.as_ref().display())).into())
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over one snapshot section.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Self {
        Cursor {
            buf,
            pos: 0,
            context,
        }
    }

    fn truncated(&self) -> SnapshotError {
        SnapshotError::Truncated {
            context: self.context.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.buf.len() {
            return Err(self.truncated());
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Skips to the next 8-byte boundary (v2 sections keep 8-byte-wide
    /// columns aligned with zero padding).
    fn align8(&mut self) -> Result<(), SnapshotError> {
        let target = pad8_len(self.pos);
        self.take(target - self.pos)?;
        Ok(())
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bulk-decodes `n` little-endian u32s in one bounds check — the hot
    /// path for columns and posting lists (per-element reads would dominate
    /// the whole load).
    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| self.truncated())?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk-decodes `n` little-endian u32s, appending into `out` (the
    /// postings-arena fill path — no per-list allocation).
    fn u32_into(&mut self, n: usize, out: &mut Vec<u32>) -> Result<(), SnapshotError> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| self.truncated())?)?;
        out.extend(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(())
    }

    /// Bulk-decodes `n` little-endian u64s in one bounds check.
    fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>, SnapshotError> {
        let raw = self.take(n.checked_mul(8).ok_or_else(|| self.truncated())?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk-decodes `n` little-endian u128s in one bounds check.
    fn u128_vec(&mut self, n: usize) -> Result<Vec<u128>, SnapshotError> {
        let raw = self.take(n.checked_mul(16).ok_or_else(|| self.truncated())?)?;
        Ok(raw
            .chunks_exact(16)
            .map(|c| u128::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A count field, validated against what the remaining bytes could
    /// possibly hold (each counted element occupies >= `min_elem_bytes`),
    /// so corrupt counts fail fast instead of attempting huge allocations.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(min_elem_bytes as u64) > remaining {
            return Err(SnapshotError::Corrupt(format!(
                "{}: count {n} exceeds section capacity",
                self.context
            )));
        }
        Ok(n as usize)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_dict(bytes: &[u8]) -> Result<Dictionary, SnapshotError> {
    let mut c = Cursor::new(bytes, "dictionary");
    let n = c.count(4)?;
    // Borrowed &str slices straight off the snapshot buffer — the only
    // per-term allocations are the ones interning itself performs.
    let mut names: Vec<&str> = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        let name = std::str::from_utf8(raw)
            .map_err(|e| SnapshotError::Corrupt(format!("dictionary term not utf-8: {e}")))?;
        names.push(name);
    }
    if !c.done() {
        return Err(SnapshotError::Corrupt(
            "dictionary: trailing bytes after last term".into(),
        ));
    }
    Dictionary::from_names(names).map_err(|e| SnapshotError::Corrupt(e.to_string()))
}

fn decode_cols(
    bytes: &[u8],
    dict_len: usize,
    aligned: bool,
) -> Result<TripleColumns, SnapshotError> {
    let mut c = Cursor::new(bytes, "triple columns");
    let n = c.count(20)?;
    let term_col = |c: &mut Cursor<'_>, what: &str| -> Result<Vec<TermId>, SnapshotError> {
        let raw = c.u32_vec(n)?;
        if let Some(&id) = raw.iter().find(|&&id| id as usize >= dict_len) {
            return Err(SnapshotError::Corrupt(format!(
                "{what} column references term {id} outside dictionary (len {dict_len})"
            )));
        }
        // Same-width map lets the collect reuse the u32 allocation in place.
        Ok(raw.into_iter().map(TermId).collect())
    };
    let s = term_col(&mut c, "subject")?;
    let p = term_col(&mut c, "predicate")?;
    let o = term_col(&mut c, "object")?;
    if aligned {
        c.align8()?;
    }
    let mut score = Vec::with_capacity(n);
    for bits in c.u64_vec(n)? {
        let v = f64::from_bits(bits);
        // Same invariant the TSV reader enforces: finite and non-negative.
        if !v.is_finite() || v < 0.0 {
            return Err(SnapshotError::Corrupt(format!(
                "invalid score {v} in score column (must be finite and non-negative)"
            )));
        }
        score.push(Score::new(v));
    }
    if !c.done() {
        return Err(SnapshotError::Corrupt(
            "triple columns: trailing bytes after score column".into(),
        ));
    }
    TripleColumns::from_parts(s, p, o, score)
        .ok_or_else(|| SnapshotError::Corrupt("triple columns have unequal lengths".into()))
}

/// Every posting entry must reference a triple inside the table.
fn check_list(list: &[u32], n_triples: usize) -> Result<(), SnapshotError> {
    if let Some(&i) = list.iter().find(|&&i| i as usize >= n_triples) {
        return Err(SnapshotError::Corrupt(format!(
            "posting references triple {i} outside table (len {n_triples})"
        )));
    }
    Ok(())
}

/// Every (start, len) range must lie inside the postings arena.
fn check_ranges(starts: &[u64], lens: &[u32], arena_len: usize) -> Result<(), SnapshotError> {
    for (&start, &len) in starts.iter().zip(lens) {
        let end = start.checked_add(u64::from(len));
        if end.is_none_or(|e| e > arena_len as u64) {
            return Err(SnapshotError::Corrupt(format!(
                "posting range {start}+{len} exceeds arena (len {arena_len})"
            )));
        }
    }
    Ok(())
}

fn unsorted(what: &str) -> SnapshotError {
    SnapshotError::Corrupt(format!("{what} keys not strictly ascending"))
}

/// Version-2 index decode: bulk column copies straight into the
/// sorted-array maps. The only per-entry work left is validation
/// (key order, range bounds, posting bounds) — no hashing, no inserts.
fn decode_idx(bytes: &[u8], n_triples: usize) -> Result<PatternIndexes, SnapshotError> {
    let mut c = Cursor::new(bytes, "pattern indexes");

    let spo_count = c.count(20)?;
    let spo_keys = c.u128_vec(spo_count)?;
    let spo_vals = c.u32_vec(spo_count)?;
    c.align8()?;
    check_list(&spo_vals, n_triples)?;
    let spo = TripleMap::from_columns(spo_keys, spo_vals).ok_or_else(|| unsorted("spo"))?;

    let pair = |c: &mut Cursor<'_>| -> Result<PostingMap<u64>, SnapshotError> {
        let count = c.count(20)?;
        let keys = c.u64_vec(count)?;
        let starts = c.u64_vec(count)?;
        let lens = c.u32_vec(count)?;
        c.align8()?;
        PostingMap::from_columns(keys, starts, lens).ok_or_else(|| unsorted("pair-map"))
    };
    let sp = pair(&mut c)?;
    let so = pair(&mut c)?;
    let po = pair(&mut c)?;

    let single = |c: &mut Cursor<'_>| -> Result<PostingMap<TermId>, SnapshotError> {
        let count = c.count(16)?;
        let keys: Vec<TermId> = c.u32_vec(count)?.into_iter().map(TermId).collect();
        c.align8()?;
        let starts = c.u64_vec(count)?;
        let lens = c.u32_vec(count)?;
        c.align8()?;
        PostingMap::from_columns(keys, starts, lens).ok_or_else(|| unsorted("single-map"))
    };
    let s = single(&mut c)?;
    let p = single(&mut c)?;
    let o = single(&mut c)?;

    let arena_len = c.count(4)?;
    let postings = c.u32_vec(arena_len)?;
    c.align8()?;
    check_list(&postings, n_triples)?;
    for m in [&sp, &so, &po] {
        check_ranges(&m.starts, &m.lens, postings.len())?;
    }
    for m in [&s, &p, &o] {
        check_ranges(&m.starts, &m.lens, postings.len())?;
    }

    let all_count = c.count(4)?;
    let all = c.u32_vec(all_count)?;
    check_list(&all, n_triples)?;
    if all.len() != n_triples {
        return Err(SnapshotError::Corrupt(format!(
            "global list has {} entries for {} triples",
            all.len(),
            n_triples
        )));
    }
    if !c.done() {
        return Err(SnapshotError::Corrupt(
            "pattern indexes: trailing bytes after global list".into(),
        ));
    }
    Ok(PatternIndexes {
        spo,
        sp,
        so,
        po,
        s,
        p,
        o,
        postings,
        all,
    })
}

/// Version-1 index decode: per-entry map records with inline posting lists.
/// V1 writers emitted entries key-sorted, so this fills the sorted-array
/// representation sequentially (posting lists concatenate into the shared
/// arena in file order — still no hashing on the load path).
fn decode_idx_v1(bytes: &[u8], n_triples: usize) -> Result<PatternIndexes, SnapshotError> {
    let mut c = Cursor::new(bytes, "pattern indexes");

    let spo_count = c.count(16)?;
    let mut spo = TripleMap::default();
    let spo_raw = c.u32_vec(spo_count * 4)?;
    for e in spo_raw.chunks_exact(4) {
        let key = (u128::from(e[0]) << 64) | (u128::from(e[1]) << 32) | u128::from(e[2]);
        check_list(&e[3..4], n_triples)?;
        if spo.keys.last().is_some_and(|&last| key <= last) {
            return Err(unsorted("spo"));
        }
        spo.keys.push(key);
        spo.vals.push(e[3]);
    }

    let mut arena: Vec<u32> = Vec::with_capacity(6 * n_triples);
    let pair =
        |c: &mut Cursor<'_>, arena: &mut Vec<u32>| -> Result<PostingMap<u64>, SnapshotError> {
            let count = c.count(12)?;
            let mut map = PostingMap::default();
            for _ in 0..count {
                let key = c.u64()?;
                let len = c.u32()?;
                let start = arena.len() as u64;
                c.u32_into(len as usize, arena)?;
                check_list(&arena[start as usize..], n_triples)?;
                if map.keys.last().is_some_and(|&last| key <= last) {
                    return Err(unsorted("pair-map"));
                }
                map.keys.push(key);
                map.starts.push(start);
                map.lens.push(len);
            }
            Ok(map)
        };
    let sp = pair(&mut c, &mut arena)?;
    let so = pair(&mut c, &mut arena)?;
    let po = pair(&mut c, &mut arena)?;

    let single =
        |c: &mut Cursor<'_>, arena: &mut Vec<u32>| -> Result<PostingMap<TermId>, SnapshotError> {
            let count = c.count(8)?;
            let mut map = PostingMap::default();
            for _ in 0..count {
                let key = TermId(c.u32()?);
                let len = c.u32()?;
                let start = arena.len() as u64;
                c.u32_into(len as usize, arena)?;
                check_list(&arena[start as usize..], n_triples)?;
                if map.keys.last().is_some_and(|&last| key <= last) {
                    return Err(unsorted("single-map"));
                }
                map.keys.push(key);
                map.starts.push(start);
                map.lens.push(len);
            }
            Ok(map)
        };
    let s = single(&mut c, &mut arena)?;
    let p = single(&mut c, &mut arena)?;
    let o = single(&mut c, &mut arena)?;

    let all_count = c.count(4)?;
    let all = c.u32_vec(all_count)?;
    check_list(&all, n_triples)?;
    if all.len() != n_triples {
        return Err(SnapshotError::Corrupt(format!(
            "global list has {} entries for {} triples",
            all.len(),
            n_triples
        )));
    }
    if !c.done() {
        return Err(SnapshotError::Corrupt(
            "pattern indexes: trailing bytes after global list".into(),
        ));
    }
    Ok(PatternIndexes {
        spo,
        sp,
        so,
        po,
        s,
        p,
        o,
        postings: arena,
        all,
    })
}

/// Deserializes a snapshot image produced by [`write_snapshot`] (or a
/// version-1 image produced by an older build / [`write_snapshot_v1`]).
///
/// Validates the magic, version, overall framing and FNV-1a trailer before
/// touching any section, then checks every cross-reference (term ids against
/// the dictionary, posting entries against the triple count, ranges against
/// the arena) while decoding.
pub fn read_snapshot(bytes: &[u8]) -> Result<KnowledgeGraph> {
    let header_err = |context: &str| SnapshotError::Truncated {
        context: context.to_string(),
    };
    if bytes.len() < 8 {
        return Err(header_err("magic").into());
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic.into());
    }
    if bytes.len() < 16 {
        return Err(header_err("header").into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        }
        .into());
    }
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    // v1: 12-byte table entries, bodies packed back to back.
    // v2: 16-byte table entries, bodies zero-padded to 8-byte boundaries.
    let (entry_bytes, aligned) = if version >= 2 {
        (16, true)
    } else {
        (12, false)
    };
    let table_end = 16 + section_count * entry_bytes;
    if bytes.len() < table_end {
        return Err(header_err("section table").into());
    }
    let mut sections = Vec::with_capacity(section_count);
    let mut payload_len = 0usize;
    for i in 0..section_count {
        let at = 16 + i * entry_bytes;
        let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let len_at = at + entry_bytes - 8;
        let len = u64::from_le_bytes(bytes[len_at..len_at + 8].try_into().unwrap());
        let len = usize::try_from(len)
            .map_err(|_| SnapshotError::Corrupt(format!("section {id} length overflows")))?;
        let stored = if aligned { pad8_len(len) } else { len };
        payload_len = payload_len
            .checked_add(stored)
            .ok_or_else(|| SnapshotError::Corrupt("section lengths overflow".into()))?;
        sections.push((id, len, stored));
    }
    let expected_total = table_end
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| SnapshotError::Corrupt("section lengths overflow".into()))?;
    if bytes.len() < expected_total {
        return Err(header_err("payload").into());
    }
    if bytes.len() > expected_total {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after checksum",
            bytes.len() - expected_total
        ))
        .into());
    }
    let body_end = expected_total - 8;
    let expected = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    // v1 trailers were written with the single-chain word FNV; v2 switched
    // to the 8-lane variant. Old files must keep verifying, so the checksum
    // function is part of each format version.
    let actual = if version >= 2 {
        fnv1a_64_lanes(&bytes[..body_end])
    } else {
        fnv1a_64_words(&bytes[..body_end])
    };
    if expected != actual {
        return Err(SnapshotError::ChecksumMismatch { expected, actual }.into());
    }

    let mut dict_bytes = None;
    let mut cols_bytes = None;
    let mut idx_bytes = None;
    let mut offset = table_end;
    for (id, len, stored) in sections {
        let body = &bytes[offset..offset + len];
        offset += stored;
        match id {
            SECTION_DICT => dict_bytes = Some(body),
            SECTION_COLS => cols_bytes = Some(body),
            SECTION_IDX => idx_bytes = Some(body),
            // Unknown sections are additive extensions — skip them.
            _ => {}
        }
    }
    let missing = |name: &str| SnapshotError::Corrupt(format!("required section {name} missing"));
    let dict = decode_dict(dict_bytes.ok_or_else(|| missing("DICT"))?)?;
    let cols = decode_cols(
        cols_bytes.ok_or_else(|| missing("COLS"))?,
        dict.len(),
        aligned,
    )?;
    let idx_body = idx_bytes.ok_or_else(|| missing("IDX"))?;
    let indexes = if version >= 2 {
        decode_idx(idx_body, cols.len())?
    } else {
        decode_idx_v1(idx_body, cols.len())?
    };
    Ok(KnowledgeGraph::from_parts(dict, cols, indexes))
}

/// Loads a knowledge graph from a snapshot file at `path`.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<KnowledgeGraph> {
    let bytes = std::fs::read(path.as_ref()).map_err(|e| {
        specqp_common::Error::from(SnapshotError::Io(format!(
            "reading {}: {e}",
            path.as_ref().display()
        )))
    })?;
    read_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KnowledgeGraphBuilder, PatternKey};
    use specqp_common::Error;

    fn sample() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "type", "singer", 10.0);
        b.add("b", "type", "singer", 4.0);
        b.add("c", "type", "singer", 2.0);
        b.add("a", "type", "lyricist", 7.0);
        b.add("a", "plays", "guitar", 3.0);
        b.intern("ghost"); // interned term with no triples must survive
        b.build()
    }

    fn snapshot_err(r: Result<KnowledgeGraph>) -> SnapshotError {
        match r {
            Err(Error::Snapshot(e)) => e,
            Err(other) => panic!("expected snapshot error, got {other:?}"),
            Ok(_) => panic!("expected error, got a graph"),
        }
    }

    fn assert_graphs_answer_identically(g: &KnowledgeGraph, g2: &KnowledgeGraph) {
        assert_eq!(g2.len(), g.len());
        assert_eq!(g2.dictionary().len(), g.dictionary().len());
        // Ids are identical, not merely isomorphic.
        for (id, name) in g.dictionary().iter() {
            assert_eq!(g2.dictionary().lookup(name), Some(id));
        }
        // Every signature answers identically.
        let d = g.dictionary();
        let (a, ty, singer) = (
            d.lookup("a").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("singer").unwrap(),
        );
        for key in [
            PatternKey::spo(a, ty, singer),
            PatternKey::sp(a, ty),
            PatternKey::so(a, singer),
            PatternKey::po(ty, singer),
            PatternKey::s_only(a),
            PatternKey::p_only(ty),
            PatternKey::o_only(singer),
            PatternKey::any(),
        ] {
            let m1 = g.matches(key);
            let m2 = g2.matches(key);
            assert_eq!(m1.len(), m2.len(), "{key:?}");
            for r in 0..m1.len() {
                assert_eq!(m1.id_at(r), m2.id_at(r), "{key:?} rank {r}");
                assert_eq!(m1.score_at(r), m2.score_at(r), "{key:?} rank {r}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let bytes = write_snapshot(&g);
        let g2 = read_snapshot(&bytes).unwrap();
        assert_graphs_answer_identically(&g, &g2);
        assert_eq!(
            g2.dictionary().lookup("ghost"),
            g.dictionary().lookup("ghost")
        );
    }

    #[test]
    fn v1_image_reads_back_identically() {
        let g = sample();
        let bytes = write_snapshot_v1(&g);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        let g2 = read_snapshot(&bytes).unwrap();
        assert_graphs_answer_identically(&g, &g2);
    }

    #[test]
    fn v2_sections_are_8_byte_aligned() {
        let bytes = write_snapshot(&sample());
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let table_end = 16 + count * 16;
        assert_eq!(table_end % 8, 0);
        let mut offset = table_end;
        for i in 0..count {
            assert_eq!(offset % 8, 0, "section {i} starts unaligned");
            let len_at = 16 + i * 16 + 8;
            let len = u64::from_le_bytes(bytes[len_at..len_at + 8].try_into().unwrap()) as usize;
            offset += pad8_len(len);
        }
        assert_eq!(offset + 8, bytes.len());
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let g = sample();
        assert_eq!(write_snapshot(&g), write_snapshot(&g));
        assert_eq!(write_snapshot_v1(&g), write_snapshot_v1(&g));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = KnowledgeGraphBuilder::new().build();
        let g2 = read_snapshot(&write_snapshot(&g)).unwrap();
        assert!(g2.is_empty());
        assert!(g2.matches(PatternKey::any()).is_empty());
        let g3 = read_snapshot(&write_snapshot_v1(&g)).unwrap();
        assert!(g3.is_empty());
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let bytes = write_snapshot(&sample());
        // Every proper prefix must fail with Truncated (or a checksum/corrupt
        // error is impossible here because framing is checked first).
        for cut in [0, 4, 8, 12, 15, 20, bytes.len() / 2, bytes.len() - 1] {
            let e = snapshot_err(read_snapshot(&bytes[..cut]));
            if cut >= 8 {
                assert!(
                    matches!(e, SnapshotError::Truncated { .. }),
                    "cut at {cut}: {e:?}"
                );
            } else {
                // Shorter than the magic: either truncated-magic or, for a
                // cut inside the magic, bad magic is also acceptable.
                assert!(
                    matches!(e, SnapshotError::Truncated { .. } | SnapshotError::BadMagic),
                    "cut at {cut}: {e:?}"
                );
            }
        }
    }

    #[test]
    fn bad_magic_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        bytes[0] = b'X';
        assert_eq!(snapshot_err(read_snapshot(&bytes)), SnapshotError::BadMagic);
        // A TSV file is not a snapshot.
        let e = snapshot_err(read_snapshot(b"alice\trdf:type\tsinger\t12.5\n"));
        assert_eq!(e, SnapshotError::BadMagic);
    }

    #[test]
    fn wrong_version_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let e = snapshot_err(read_snapshot(&bytes));
        assert_eq!(
            e,
            SnapshotError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn checksum_mismatch_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        // Flip one payload byte (past header + table, before the trailer).
        let mid = bytes.len() - 16;
        bytes[mid] ^= 0xff;
        let e = snapshot_err(read_snapshot(&bytes));
        assert!(matches!(e, SnapshotError::ChecksumMismatch { .. }), "{e:?}");
    }

    #[test]
    fn trailing_garbage_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        bytes.extend_from_slice(b"extraextra");
        let e = snapshot_err(read_snapshot(&bytes));
        assert!(matches!(e, SnapshotError::Corrupt(_)), "{e:?}");
    }

    #[test]
    fn corrupt_count_fails_without_huge_allocation() {
        let g = sample();
        let bytes = write_snapshot(&g);
        // The DICT section starts right after the header+table; overwrite its
        // term count with an absurd value and refresh the checksum so the
        // framing passes and the structural check is what fires.
        let table_end = 16 + 3 * 16;
        let mut bytes = bytes;
        bytes[table_end..table_end + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_end = bytes.len() - 8;
        let sum = fnv1a_64_lanes(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        let e = snapshot_err(read_snapshot(&bytes));
        assert!(matches!(e, SnapshotError::Corrupt(_)), "{e:?}");
    }

    #[test]
    fn negative_or_infinite_score_in_snapshot_is_corrupt() {
        let g = sample();
        for bad in [-1.0f64, f64::INFINITY, f64::NAN] {
            let mut bytes = write_snapshot(&g);
            // Locate the score column from the section table: COLS follows
            // the padded DICT body; inside COLS the scores follow the count
            // and the three (jointly padded) term columns. Patch the first
            // score and refresh the checksum so the structural check (not
            // the checksum) is what fires.
            let table_end = 16 + 3 * 16;
            let dict_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
            let score_off = table_end + pad8_len(dict_len) + 8 + pad8_len(3 * 4 * g.len());
            bytes[score_off..score_off + 8].copy_from_slice(&bad.to_bits().to_le_bytes());
            let body_end = bytes.len() - 8;
            let sum = fnv1a_64_lanes(&bytes[..body_end]);
            bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
            let e = snapshot_err(read_snapshot(&bytes));
            assert!(matches!(e, SnapshotError::Corrupt(_)), "{bad}: {e:?}");
        }
    }

    #[test]
    fn unsorted_v2_keys_are_corrupt() {
        let g = sample();
        let mut bytes = write_snapshot(&g);
        // The IDX section is third: swap the first two spo keys (two u128s
        // right after the count) and refresh the checksum.
        let table_end = 16 + 3 * 16;
        let dict_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        let cols_len = u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
        let idx_off = table_end + pad8_len(dict_len) + pad8_len(cols_len);
        let key_off = idx_off + 8;
        let (a, b) = (key_off, key_off + 16);
        let first: [u8; 16] = bytes[a..a + 16].try_into().unwrap();
        let second: [u8; 16] = bytes[b..b + 16].try_into().unwrap();
        bytes[a..a + 16].copy_from_slice(&second);
        bytes[b..b + 16].copy_from_slice(&first);
        let body_end = bytes.len() - 8;
        let sum = fnv1a_64_lanes(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        let e = snapshot_err(read_snapshot(&bytes));
        assert!(matches!(e, SnapshotError::Corrupt(_)), "{e:?}");
    }

    #[test]
    fn save_and_load_via_file() {
        let g = sample();
        let path =
            std::env::temp_dir().join(format!("specqp_snapshot_test_{}.snap", std::process::id()));
        save_snapshot(&g, &path).unwrap();
        let g2 = load_snapshot(&path).unwrap();
        assert_eq!(g2.len(), g.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = snapshot_err(load_snapshot("/nonexistent/specqp.snap"));
        assert!(matches!(e, SnapshotError::Io(_)), "{e:?}");
    }
}
