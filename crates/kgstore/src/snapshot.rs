//! Versioned binary KG snapshots.
//!
//! A snapshot serializes everything [`KnowledgeGraphBuilder::build`](crate::KnowledgeGraphBuilder::build) spends
//! its time computing — the interned dictionary, the four triple columns and
//! all eight prebuilt pattern indexes with their score-sorted posting lists —
//! into one checksummed file. Loading a snapshot deserializes the posting
//! lists verbatim: no TSV parsing, no duplicate folding and, crucially, no
//! re-sorting of any posting list. (The hash maps that key the posting lists
//! are re-inserted with pre-sized capacity; that is the only per-entry work
//! left on the load path.)
//!
//! # Layout (format version 1)
//!
//! All integers are little-endian.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic      8 B   b"SPECQPKG"                                 │
//! │ version    u32   format version (currently 1)                │
//! │ sections   u32   section count                               │
//! │ table      n × (id: u32, len: u64)  — offsets are implicit:  │
//! │                  sections are stored back to back in order   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section 1  DICT  term count, then (len: u32, utf-8 bytes)    │
//! │ section 2  COLS  row count n, then s[n] p[n] o[n] (u32) and  │
//! │                  score[n] (f64 bits) as contiguous columns   │
//! │ section 3  IDX   spo map, sp/so/po pair maps, s/p/o single   │
//! │                  maps, global score-sorted list              │
//! ├──────────────────────────────────────────────────────────────┤
//! │ checksum   u64   word-wise FNV-1a (fnv1a_64_words) over      │
//! │                  every preceding byte                        │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Unknown trailing sections are skipped on read, so additive extensions do
//! not need a version bump; any change to an existing section's encoding
//! does. Readers reject versions newer than [`FORMAT_VERSION`] with
//! [`SnapshotError::UnsupportedVersion`].
//!
//! Every corruption mode maps to a typed [`SnapshotError`] — truncation,
//! foreign files, version skew, checksum mismatch and structural
//! inconsistencies all return errors, never panic.

use crate::columns::TripleColumns;
use crate::index::{PatternIndexes, PostingRange};
use crate::store::KnowledgeGraph;
use specqp_common::{fnv1a_64_words, Dictionary, FxHashMap, Result, Score, SnapshotError, TermId};
use std::path::Path;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SPECQPKG";
/// Highest snapshot format version this build reads and the version it
/// writes.
pub const FORMAT_VERSION: u32 = 1;

const SECTION_DICT: u32 = 1;
const SECTION_COLS: u32 = 2;
const SECTION_IDX: u32 = 3;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_dict(dict: &Dictionary) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, dict.len() as u64);
    for (_, name) in dict.iter() {
        put_u32(&mut buf, name.len() as u32);
        buf.extend_from_slice(name.as_bytes());
    }
    buf
}

fn encode_cols(cols: &TripleColumns) -> Vec<u8> {
    let n = cols.len();
    let mut buf = Vec::with_capacity(8 + n * 20);
    put_u64(&mut buf, n as u64);
    for &t in cols.subjects() {
        put_u32(&mut buf, t.0);
    }
    for &t in cols.predicates() {
        put_u32(&mut buf, t.0);
    }
    for &t in cols.objects() {
        put_u32(&mut buf, t.0);
    }
    for &s in cols.scores() {
        put_u64(&mut buf, s.value().to_bits());
    }
    buf
}

/// Writes a map's entries sorted by key so snapshot bytes are deterministic
/// for a given graph (hash-map iteration order is not). Posting lists are
/// written inline after their key — on load they are re-concatenated into
/// the shared arena in file order.
fn encode_idx(idx: &PatternIndexes) -> Vec<u8> {
    let mut buf = Vec::new();

    let mut spo: Vec<(&(TermId, TermId, TermId), &u32)> = idx.spo.iter().collect();
    spo.sort_unstable_by_key(|(k, _)| **k);
    put_u64(&mut buf, spo.len() as u64);
    for ((s, p, o), &i) in spo {
        put_u32(&mut buf, s.0);
        put_u32(&mut buf, p.0);
        put_u32(&mut buf, o.0);
        put_u32(&mut buf, i);
    }

    for map in [&idx.sp, &idx.so, &idx.po] {
        let mut entries: Vec<(&u64, &crate::index::PostingRange)> = map.iter().collect();
        entries.sort_unstable_by_key(|(k, _)| **k);
        put_u64(&mut buf, entries.len() as u64);
        for (&key, &range) in entries {
            put_u64(&mut buf, key);
            let list = idx.list(range);
            put_u32(&mut buf, list.len() as u32);
            for &i in list {
                put_u32(&mut buf, i);
            }
        }
    }

    for map in [&idx.s, &idx.p, &idx.o] {
        let mut entries: Vec<(&TermId, &crate::index::PostingRange)> = map.iter().collect();
        entries.sort_unstable_by_key(|(k, _)| **k);
        put_u64(&mut buf, entries.len() as u64);
        for (&key, &range) in entries {
            put_u32(&mut buf, key.0);
            let list = idx.list(range);
            put_u32(&mut buf, list.len() as u32);
            for &i in list {
                put_u32(&mut buf, i);
            }
        }
    }

    put_u64(&mut buf, idx.all.len() as u64);
    for &i in &idx.all {
        put_u32(&mut buf, i);
    }
    buf
}

/// Serializes `graph` into an in-memory snapshot image.
pub fn write_snapshot(graph: &KnowledgeGraph) -> Vec<u8> {
    let sections = [
        (SECTION_DICT, encode_dict(&graph.dict)),
        (SECTION_COLS, encode_cols(&graph.cols)),
        (SECTION_IDX, encode_idx(&graph.indexes)),
    ];
    let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(16 + sections.len() * 12 + payload_len + 8);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, sections.len() as u32);
    for (id, body) in &sections {
        put_u32(&mut out, *id);
        put_u64(&mut out, body.len() as u64);
    }
    for (_, body) in &sections {
        out.extend_from_slice(body);
    }
    let checksum = fnv1a_64_words(&out);
    put_u64(&mut out, checksum);
    out
}

/// Serializes `graph` to a snapshot file at `path`.
pub fn save_snapshot(graph: &KnowledgeGraph, path: impl AsRef<Path>) -> Result<()> {
    let bytes = write_snapshot(graph);
    std::fs::write(path.as_ref(), bytes)
        .map_err(|e| SnapshotError::Io(format!("writing {}: {e}", path.as_ref().display())).into())
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over one snapshot section.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Self {
        Cursor {
            buf,
            pos: 0,
            context,
        }
    }

    fn truncated(&self) -> SnapshotError {
        SnapshotError::Truncated {
            context: self.context.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.buf.len() {
            return Err(self.truncated());
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bulk-decodes `n` little-endian u32s in one bounds check — the hot
    /// path for columns and posting lists (per-element reads would dominate
    /// the whole load).
    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| self.truncated())?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk-decodes `n` little-endian u32s, appending into `out` (the
    /// postings-arena fill path — no per-list allocation).
    fn u32_into(&mut self, n: usize, out: &mut Vec<u32>) -> Result<(), SnapshotError> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| self.truncated())?)?;
        out.extend(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(())
    }

    /// Bulk-decodes `n` little-endian u64s in one bounds check.
    fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>, SnapshotError> {
        let raw = self.take(n.checked_mul(8).ok_or_else(|| self.truncated())?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A count field, validated against what the remaining bytes could
    /// possibly hold (each counted element occupies >= `min_elem_bytes`),
    /// so corrupt counts fail fast instead of attempting huge allocations.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(min_elem_bytes as u64) > remaining {
            return Err(SnapshotError::Corrupt(format!(
                "{}: count {n} exceeds section capacity",
                self.context
            )));
        }
        Ok(n as usize)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_dict(bytes: &[u8]) -> Result<Dictionary, SnapshotError> {
    let mut c = Cursor::new(bytes, "dictionary");
    let n = c.count(4)?;
    // Borrowed &str slices straight off the snapshot buffer — the only
    // per-term allocations are the ones interning itself performs.
    let mut names: Vec<&str> = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        let name = std::str::from_utf8(raw)
            .map_err(|e| SnapshotError::Corrupt(format!("dictionary term not utf-8: {e}")))?;
        names.push(name);
    }
    if !c.done() {
        return Err(SnapshotError::Corrupt(
            "dictionary: trailing bytes after last term".into(),
        ));
    }
    Dictionary::from_names(names).map_err(|e| SnapshotError::Corrupt(e.to_string()))
}

fn decode_cols(bytes: &[u8], dict_len: usize) -> Result<TripleColumns, SnapshotError> {
    let mut c = Cursor::new(bytes, "triple columns");
    let n = c.count(20)?;
    let term_col = |c: &mut Cursor<'_>, what: &str| -> Result<Vec<TermId>, SnapshotError> {
        let raw = c.u32_vec(n)?;
        if let Some(&id) = raw.iter().find(|&&id| id as usize >= dict_len) {
            return Err(SnapshotError::Corrupt(format!(
                "{what} column references term {id} outside dictionary (len {dict_len})"
            )));
        }
        // Same-width map lets the collect reuse the u32 allocation in place.
        Ok(raw.into_iter().map(TermId).collect())
    };
    let s = term_col(&mut c, "subject")?;
    let p = term_col(&mut c, "predicate")?;
    let o = term_col(&mut c, "object")?;
    let mut score = Vec::with_capacity(n);
    for bits in c.u64_vec(n)? {
        let v = f64::from_bits(bits);
        // Same invariant the TSV reader enforces: finite and non-negative.
        if !v.is_finite() || v < 0.0 {
            return Err(SnapshotError::Corrupt(format!(
                "invalid score {v} in score column (must be finite and non-negative)"
            )));
        }
        score.push(Score::new(v));
    }
    if !c.done() {
        return Err(SnapshotError::Corrupt(
            "triple columns: trailing bytes after score column".into(),
        ));
    }
    TripleColumns::from_parts(s, p, o, score)
        .ok_or_else(|| SnapshotError::Corrupt("triple columns have unequal lengths".into()))
}

fn decode_idx(bytes: &[u8], n_triples: usize) -> Result<PatternIndexes, SnapshotError> {
    let mut c = Cursor::new(bytes, "pattern indexes");
    let check_list = |list: &[u32]| -> Result<(), SnapshotError> {
        if let Some(&i) = list.iter().find(|&&i| i as usize >= n_triples) {
            return Err(SnapshotError::Corrupt(format!(
                "posting references triple {i} outside table (len {n_triples})"
            )));
        }
        Ok(())
    };

    let mut idx = PatternIndexes::default();

    let spo_count = c.count(16)?;
    idx.spo = FxHashMap::with_capacity_and_hasher(spo_count, Default::default());
    let spo_raw = c.u32_vec(spo_count * 4)?;
    for e in spo_raw.chunks_exact(4) {
        let (s, p, o) = (TermId(e[0]), TermId(e[1]), TermId(e[2]));
        check_list(&e[3..4])?;
        if idx.spo.insert((s, p, o), e[3]).is_some() {
            return Err(SnapshotError::Corrupt(format!(
                "duplicate spo entry ({s:?},{p:?},{o:?})"
            )));
        }
    }

    // Posting lists are concatenated into the shared arena in file order;
    // maps record only (start, len) ranges — no per-list allocation.
    let mut arena: Vec<u32> = Vec::with_capacity(6 * n_triples);
    let pair_map = |c: &mut Cursor<'_>,
                    arena: &mut Vec<u32>|
     -> Result<FxHashMap<u64, PostingRange>, SnapshotError> {
        let count = c.count(12)?;
        let mut map = FxHashMap::with_capacity_and_hasher(count, Default::default());
        for _ in 0..count {
            let key = c.u64()?;
            let len = c.u32()?;
            let start = arena.len() as u64;
            c.u32_into(len as usize, arena)?;
            check_list(&arena[start as usize..])?;
            if map.insert(key, PostingRange { start, len }).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate posting key {key:#x}"
                )));
            }
        }
        Ok(map)
    };
    idx.sp = pair_map(&mut c, &mut arena)?;
    idx.so = pair_map(&mut c, &mut arena)?;
    idx.po = pair_map(&mut c, &mut arena)?;

    let single_map = |c: &mut Cursor<'_>,
                      arena: &mut Vec<u32>|
     -> Result<FxHashMap<TermId, PostingRange>, SnapshotError> {
        let count = c.count(8)?;
        let mut map = FxHashMap::with_capacity_and_hasher(count, Default::default());
        for _ in 0..count {
            let key = TermId(c.u32()?);
            let len = c.u32()?;
            let start = arena.len() as u64;
            c.u32_into(len as usize, arena)?;
            check_list(&arena[start as usize..])?;
            if map.insert(key, PostingRange { start, len }).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate posting key {key:?}"
                )));
            }
        }
        Ok(map)
    };
    idx.s = single_map(&mut c, &mut arena)?;
    idx.p = single_map(&mut c, &mut arena)?;
    idx.o = single_map(&mut c, &mut arena)?;
    idx.postings = arena;

    let all_count = c.count(4)?;
    idx.all = c.u32_vec(all_count)?;
    check_list(&idx.all)?;
    if idx.all.len() != n_triples {
        return Err(SnapshotError::Corrupt(format!(
            "global list has {} entries for {} triples",
            idx.all.len(),
            n_triples
        )));
    }
    if !c.done() {
        return Err(SnapshotError::Corrupt(
            "pattern indexes: trailing bytes after global list".into(),
        ));
    }
    Ok(idx)
}

/// Deserializes a snapshot image produced by [`write_snapshot`].
///
/// Validates the magic, version, overall framing and FNV-1a trailer before
/// touching any section, then checks every cross-reference (term ids against
/// the dictionary, posting entries against the triple count) while decoding.
pub fn read_snapshot(bytes: &[u8]) -> Result<KnowledgeGraph> {
    let header_err = |context: &str| SnapshotError::Truncated {
        context: context.to_string(),
    };
    if bytes.len() < 8 {
        return Err(header_err("magic").into());
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic.into());
    }
    if bytes.len() < 16 {
        return Err(header_err("header").into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        }
        .into());
    }
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_end = 16 + section_count * 12;
    if bytes.len() < table_end {
        return Err(header_err("section table").into());
    }
    let mut sections = Vec::with_capacity(section_count);
    let mut payload_len = 0usize;
    for i in 0..section_count {
        let at = 16 + i * 12;
        let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let len = usize::try_from(len)
            .map_err(|_| SnapshotError::Corrupt(format!("section {id} length overflows")))?;
        payload_len = payload_len
            .checked_add(len)
            .ok_or_else(|| SnapshotError::Corrupt("section lengths overflow".into()))?;
        sections.push((id, len));
    }
    let expected_total = table_end
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| SnapshotError::Corrupt("section lengths overflow".into()))?;
    if bytes.len() < expected_total {
        return Err(header_err("payload").into());
    }
    if bytes.len() > expected_total {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after checksum",
            bytes.len() - expected_total
        ))
        .into());
    }
    let body_end = expected_total - 8;
    let expected = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let actual = fnv1a_64_words(&bytes[..body_end]);
    if expected != actual {
        return Err(SnapshotError::ChecksumMismatch { expected, actual }.into());
    }

    let mut dict_bytes = None;
    let mut cols_bytes = None;
    let mut idx_bytes = None;
    let mut offset = table_end;
    for (id, len) in sections {
        let body = &bytes[offset..offset + len];
        offset += len;
        match id {
            SECTION_DICT => dict_bytes = Some(body),
            SECTION_COLS => cols_bytes = Some(body),
            SECTION_IDX => idx_bytes = Some(body),
            // Unknown sections are additive extensions — skip them.
            _ => {}
        }
    }
    let missing = |name: &str| SnapshotError::Corrupt(format!("required section {name} missing"));
    let dict = decode_dict(dict_bytes.ok_or_else(|| missing("DICT"))?)?;
    let cols = decode_cols(cols_bytes.ok_or_else(|| missing("COLS"))?, dict.len())?;
    let indexes = decode_idx(idx_bytes.ok_or_else(|| missing("IDX"))?, cols.len())?;
    Ok(KnowledgeGraph {
        dict,
        cols,
        indexes,
    })
}

/// Loads a knowledge graph from a snapshot file at `path`.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<KnowledgeGraph> {
    let bytes = std::fs::read(path.as_ref()).map_err(|e| {
        specqp_common::Error::from(SnapshotError::Io(format!(
            "reading {}: {e}",
            path.as_ref().display()
        )))
    })?;
    read_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KnowledgeGraphBuilder, PatternKey};
    use specqp_common::Error;

    fn sample() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "type", "singer", 10.0);
        b.add("b", "type", "singer", 4.0);
        b.add("c", "type", "singer", 2.0);
        b.add("a", "type", "lyricist", 7.0);
        b.add("a", "plays", "guitar", 3.0);
        b.intern("ghost"); // interned term with no triples must survive
        b.build()
    }

    fn snapshot_err(r: Result<KnowledgeGraph>) -> SnapshotError {
        match r {
            Err(Error::Snapshot(e)) => e,
            Err(other) => panic!("expected snapshot error, got {other:?}"),
            Ok(_) => panic!("expected error, got a graph"),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let bytes = write_snapshot(&g);
        let g2 = read_snapshot(&bytes).unwrap();
        assert_eq!(g2.len(), g.len());
        assert_eq!(g2.dictionary().len(), g.dictionary().len());
        // Ids are identical, not merely isomorphic.
        for (id, name) in g.dictionary().iter() {
            assert_eq!(g2.dictionary().lookup(name), Some(id));
        }
        // Every signature answers identically.
        let d = g.dictionary();
        let (a, ty, singer) = (
            d.lookup("a").unwrap(),
            d.lookup("type").unwrap(),
            d.lookup("singer").unwrap(),
        );
        for key in [
            PatternKey::spo(a, ty, singer),
            PatternKey::sp(a, ty),
            PatternKey::so(a, singer),
            PatternKey::po(ty, singer),
            PatternKey::s_only(a),
            PatternKey::p_only(ty),
            PatternKey::o_only(singer),
            PatternKey::any(),
        ] {
            let m1 = g.matches(key);
            let m2 = g2.matches(key);
            assert_eq!(m1.len(), m2.len(), "{key:?}");
            for r in 0..m1.len() {
                assert_eq!(m1.id_at(r), m2.id_at(r), "{key:?} rank {r}");
                assert_eq!(m1.score_at(r), m2.score_at(r), "{key:?} rank {r}");
            }
        }
        assert_eq!(g2.dictionary().lookup("ghost"), d.lookup("ghost"));
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let g = sample();
        assert_eq!(write_snapshot(&g), write_snapshot(&g));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = KnowledgeGraphBuilder::new().build();
        let g2 = read_snapshot(&write_snapshot(&g)).unwrap();
        assert!(g2.is_empty());
        assert!(g2.matches(PatternKey::any()).is_empty());
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let bytes = write_snapshot(&sample());
        // Every proper prefix must fail with Truncated (or a checksum/corrupt
        // error is impossible here because framing is checked first).
        for cut in [0, 4, 8, 12, 15, 20, bytes.len() / 2, bytes.len() - 1] {
            let e = snapshot_err(read_snapshot(&bytes[..cut]));
            if cut >= 8 {
                assert!(
                    matches!(e, SnapshotError::Truncated { .. }),
                    "cut at {cut}: {e:?}"
                );
            } else {
                // Shorter than the magic: either truncated-magic or, for a
                // cut inside the magic, bad magic is also acceptable.
                assert!(
                    matches!(e, SnapshotError::Truncated { .. } | SnapshotError::BadMagic),
                    "cut at {cut}: {e:?}"
                );
            }
        }
    }

    #[test]
    fn bad_magic_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        bytes[0] = b'X';
        assert_eq!(snapshot_err(read_snapshot(&bytes)), SnapshotError::BadMagic);
        // A TSV file is not a snapshot.
        let e = snapshot_err(read_snapshot(b"alice\trdf:type\tsinger\t12.5\n"));
        assert_eq!(e, SnapshotError::BadMagic);
    }

    #[test]
    fn wrong_version_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let e = snapshot_err(read_snapshot(&bytes));
        assert_eq!(
            e,
            SnapshotError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn checksum_mismatch_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        // Flip one payload byte (past header + table, before the trailer).
        let mid = bytes.len() - 16;
        bytes[mid] ^= 0xff;
        let e = snapshot_err(read_snapshot(&bytes));
        assert!(matches!(e, SnapshotError::ChecksumMismatch { .. }), "{e:?}");
    }

    #[test]
    fn trailing_garbage_is_typed_error() {
        let mut bytes = write_snapshot(&sample());
        bytes.extend_from_slice(b"extra");
        let e = snapshot_err(read_snapshot(&bytes));
        assert!(matches!(e, SnapshotError::Corrupt(_)), "{e:?}");
    }

    #[test]
    fn corrupt_count_fails_without_huge_allocation() {
        let g = sample();
        let bytes = write_snapshot(&g);
        // The DICT section starts right after the header+table; overwrite its
        // term count with an absurd value and refresh the checksum so the
        // framing passes and the structural check is what fires.
        let table_end = 16 + 3 * 12;
        let mut bytes = bytes;
        bytes[table_end..table_end + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_end = bytes.len() - 8;
        let sum = fnv1a_64_words(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        let e = snapshot_err(read_snapshot(&bytes));
        assert!(matches!(e, SnapshotError::Corrupt(_)), "{e:?}");
    }

    #[test]
    fn negative_or_infinite_score_in_snapshot_is_corrupt() {
        let g = sample();
        for bad in [-1.0f64, f64::INFINITY, f64::NAN] {
            let mut bytes = write_snapshot(&g);
            // Section table entry 0 (DICT) holds its length at offset 20;
            // COLS follows the table + DICT, scores follow count + 3 term
            // columns. Patch the first score and refresh the checksum so
            // the structural check (not the checksum) is what fires.
            let dict_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap()) as usize;
            let score_off = (16 + 3 * 12) + dict_len + 8 + 3 * 4 * g.len();
            bytes[score_off..score_off + 8].copy_from_slice(&bad.to_bits().to_le_bytes());
            let body_end = bytes.len() - 8;
            let sum = fnv1a_64_words(&bytes[..body_end]);
            bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
            let e = snapshot_err(read_snapshot(&bytes));
            assert!(matches!(e, SnapshotError::Corrupt(_)), "{bad}: {e:?}");
        }
    }

    #[test]
    fn save_and_load_via_file() {
        let g = sample();
        let path =
            std::env::temp_dir().join(format!("specqp_snapshot_test_{}.snap", std::process::id()));
        save_snapshot(&g, &path).unwrap();
        let g2 = load_snapshot(&path).unwrap();
        assert_eq!(g2.len(), g.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = snapshot_err(load_snapshot("/nonexistent/specqp.snap"));
        assert!(matches!(e, SnapshotError::Io(_)), "{e:?}");
    }
}
