//! Lookup keys for triple-pattern matching.
//!
//! A [`PatternKey`] is the storage-level view of a triple pattern: each of
//! s/p/o is either a bound [`TermId`] or a wildcard. Which components are
//! bound determines the [`Signature`], which selects the index used to
//! answer the lookup.

use specqp_common::TermId;
use std::fmt;

/// One of the eight bound/unbound combinations of 〈s,p,o〉.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Signature {
    /// all three bound — membership test
    Spo,
    /// subject+predicate bound
    SpX,
    /// subject+object bound
    SxO,
    /// predicate+object bound
    XpO,
    /// subject bound
    Sxx,
    /// predicate bound
    XpX,
    /// object bound
    XxO,
    /// nothing bound — full scan
    Xxx,
}

/// A triple-pattern lookup key: `None` components are wildcards.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternKey {
    /// Bound subject, if any.
    pub s: Option<TermId>,
    /// Bound predicate, if any.
    pub p: Option<TermId>,
    /// Bound object, if any.
    pub o: Option<TermId>,
}

impl PatternKey {
    /// Key with all three components bound.
    pub fn spo(s: TermId, p: TermId, o: TermId) -> Self {
        PatternKey {
            s: Some(s),
            p: Some(p),
            o: Some(o),
        }
    }

    /// Key with subject and predicate bound (`s p ?o`).
    pub fn sp(s: TermId, p: TermId) -> Self {
        PatternKey {
            s: Some(s),
            p: Some(p),
            o: None,
        }
    }

    /// Key with subject and object bound (`s ?p o`).
    pub fn so(s: TermId, o: TermId) -> Self {
        PatternKey {
            s: Some(s),
            p: None,
            o: Some(o),
        }
    }

    /// Key with predicate and object bound (`?s p o`) — the classic
    /// "type pattern" shape of the paper's examples.
    pub fn po(p: TermId, o: TermId) -> Self {
        PatternKey {
            s: None,
            p: Some(p),
            o: Some(o),
        }
    }

    /// Key with only the subject bound.
    pub fn s_only(s: TermId) -> Self {
        PatternKey {
            s: Some(s),
            p: None,
            o: None,
        }
    }

    /// Key with only the predicate bound.
    pub fn p_only(p: TermId) -> Self {
        PatternKey {
            s: None,
            p: Some(p),
            o: None,
        }
    }

    /// Key with only the object bound.
    pub fn o_only(o: TermId) -> Self {
        PatternKey {
            s: None,
            p: None,
            o: Some(o),
        }
    }

    /// Key with nothing bound (matches every triple).
    pub fn any() -> Self {
        PatternKey {
            s: None,
            p: None,
            o: None,
        }
    }

    /// The signature (which components are bound).
    pub fn signature(&self) -> Signature {
        match (self.s.is_some(), self.p.is_some(), self.o.is_some()) {
            (true, true, true) => Signature::Spo,
            (true, true, false) => Signature::SpX,
            (true, false, true) => Signature::SxO,
            (false, true, true) => Signature::XpO,
            (true, false, false) => Signature::Sxx,
            (false, true, false) => Signature::XpX,
            (false, false, true) => Signature::XxO,
            (false, false, false) => Signature::Xxx,
        }
    }

    /// Number of bound components.
    pub fn bound_count(&self) -> usize {
        self.s.is_some() as usize + self.p.is_some() as usize + self.o.is_some() as usize
    }

    /// `true` if `t` matches this key.
    pub fn matches(&self, t: &crate::Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

/// Packs two 32-bit ids into one 64-bit map key.
#[inline]
pub(crate) fn pack2(a: TermId, b: TermId) -> u64 {
    (u64::from(a.0) << 32) | u64::from(b.0)
}

/// Packs three 32-bit ids into one 128-bit map key; the numeric order of
/// packed keys equals the lexicographic order of `(s, p, o)` tuples.
#[inline]
pub(crate) fn pack3(s: TermId, p: TermId, o: TermId) -> u128 {
    (u128::from(s.0) << 64) | (u128::from(p.0) << 32) | u128::from(o.0)
}

impl fmt::Debug for PatternKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn part(x: Option<TermId>) -> String {
            x.map_or("?".to_string(), |t| t.to_string())
        }
        write!(f, "({} {} {})", part(self.s), part(self.p), part(self.o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triple;

    #[test]
    fn signatures() {
        assert_eq!(
            PatternKey::spo(TermId(1), TermId(2), TermId(3)).signature(),
            Signature::Spo
        );
        assert_eq!(
            PatternKey::sp(TermId(1), TermId(2)).signature(),
            Signature::SpX
        );
        assert_eq!(
            PatternKey::so(TermId(1), TermId(3)).signature(),
            Signature::SxO
        );
        assert_eq!(
            PatternKey::po(TermId(2), TermId(3)).signature(),
            Signature::XpO
        );
        assert_eq!(PatternKey::s_only(TermId(1)).signature(), Signature::Sxx);
        assert_eq!(PatternKey::p_only(TermId(2)).signature(), Signature::XpX);
        assert_eq!(PatternKey::o_only(TermId(3)).signature(), Signature::XxO);
        assert_eq!(PatternKey::any().signature(), Signature::Xxx);
    }

    #[test]
    fn bound_count() {
        assert_eq!(PatternKey::any().bound_count(), 0);
        assert_eq!(PatternKey::p_only(TermId(0)).bound_count(), 1);
        assert_eq!(PatternKey::po(TermId(0), TermId(1)).bound_count(), 2);
        assert_eq!(
            PatternKey::spo(TermId(0), TermId(1), TermId(2)).bound_count(),
            3
        );
    }

    #[test]
    fn matching() {
        let t = Triple::new(TermId(1), TermId(2), TermId(3));
        assert!(PatternKey::any().matches(&t));
        assert!(PatternKey::po(TermId(2), TermId(3)).matches(&t));
        assert!(!PatternKey::po(TermId(2), TermId(4)).matches(&t));
        assert!(PatternKey::spo(TermId(1), TermId(2), TermId(3)).matches(&t));
        assert!(!PatternKey::s_only(TermId(9)).matches(&t));
    }

    #[test]
    fn pack2_is_injective_on_samples() {
        assert_ne!(pack2(TermId(1), TermId(2)), pack2(TermId(2), TermId(1)));
        assert_eq!(pack2(TermId(1), TermId(2)), pack2(TermId(1), TermId(2)));
    }
}
