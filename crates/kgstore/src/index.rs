//! Pattern-signature indexes with score-sorted posting lists.
//!
//! For every signature with 1 or 2 bound components there is a hash map from
//! the bound key to a posting list of triple indexes, sorted by descending
//! triple score (ties broken by triple index for determinism). The fully
//! unbound signature keeps one global sorted list; the fully bound signature
//! keeps a membership map.
//!
//! All posting lists live in **one shared arena** (`postings`); the maps
//! store `(start, len)` ranges into it. One contiguous buffer instead of one
//! heap allocation per key keeps scans cache-dense and lets the snapshot
//! loader rebuild every list with a single bulk append — no per-list
//! allocation on the restart path.
//!
//! This mirrors what the paper gets from its PostgreSQL backend: "the
//! database engine used to retrieve the matches for triple patterns in
//! sorted order" (§4.4) — every access path streams matches best-first.

use crate::columns::TripleColumns;
use crate::pattern_key::pack2;
use specqp_common::{FxHashMap, TermId};
use std::hash::Hash;

/// A `(start, len)` window into the shared postings arena.
///
/// `start` is u64 because the arena concatenates six per-signature list
/// families (each up to one entry per triple), so its total length can
/// exceed `u32::MAX` even though individual triple ids cannot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PostingRange {
    pub(crate) start: u64,
    pub(crate) len: u32,
}

/// Immutable indexes over a triple table. Built once by
/// [`KnowledgeGraphBuilder::build`](crate::KnowledgeGraphBuilder::build).
#[derive(Debug, Default)]
pub struct PatternIndexes {
    /// (s,p,o) → triple index (duplicates are merged by the builder).
    pub(crate) spo: FxHashMap<(TermId, TermId, TermId), u32>,
    /// (s,p) → postings range
    pub(crate) sp: FxHashMap<u64, PostingRange>,
    /// (s,o) → postings range
    pub(crate) so: FxHashMap<u64, PostingRange>,
    /// (p,o) → postings range
    pub(crate) po: FxHashMap<u64, PostingRange>,
    /// s → postings range
    pub(crate) s: FxHashMap<TermId, PostingRange>,
    /// p → postings range
    pub(crate) p: FxHashMap<TermId, PostingRange>,
    /// o → postings range
    pub(crate) o: FxHashMap<TermId, PostingRange>,
    /// Shared arena holding every keyed posting list back to back.
    pub(crate) postings: Vec<u32>,
    /// all triples, score-descending
    pub(crate) all: Vec<u32>,
}

/// Sorts each temporary list with `by_score_desc`, then concatenates them
/// into `arena`, replacing the lists with ranges.
fn freeze<K: Eq + Hash>(
    map: FxHashMap<K, Vec<u32>>,
    arena: &mut Vec<u32>,
    by_score_desc: &impl Fn(&u32, &u32) -> std::cmp::Ordering,
) -> FxHashMap<K, PostingRange> {
    let mut out = FxHashMap::with_capacity_and_hasher(map.len(), Default::default());
    for (key, mut list) in map {
        list.sort_unstable_by(by_score_desc);
        let range = PostingRange {
            start: arena.len() as u64,
            len: list.len() as u32,
        };
        arena.extend_from_slice(&list);
        out.insert(key, range);
    }
    out
}

impl PatternIndexes {
    /// Resolves a range to its arena slice.
    #[inline]
    pub(crate) fn list(&self, r: PostingRange) -> &[u32] {
        &self.postings[r.start as usize..r.start as usize + r.len as usize]
    }

    /// Builds all indexes for `cols`. Each posting list ends up sorted by
    /// `(score desc, triple index asc)`.
    ///
    /// The insertion pass reads the three term columns; the sort passes read
    /// only the score column — the columnar layout keeps both cache-dense.
    pub(crate) fn build(cols: &TripleColumns) -> Self {
        let n = cols.len();
        let mut spo = FxHashMap::with_capacity_and_hasher(n, Default::default());
        let mut sp: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut so: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut po: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut s_map: FxHashMap<TermId, Vec<u32>> = FxHashMap::default();
        let mut p_map: FxHashMap<TermId, Vec<u32>> = FxHashMap::default();
        let mut o_map: FxHashMap<TermId, Vec<u32>> = FxHashMap::default();
        let (subjects, predicates, objects) = (cols.subjects(), cols.predicates(), cols.objects());
        for i in 0..n {
            let (s, p, o) = (subjects[i], predicates[i], objects[i]);
            let i = i as u32;
            spo.insert((s, p, o), i);
            sp.entry(pack2(s, p)).or_default().push(i);
            so.entry(pack2(s, o)).or_default().push(i);
            po.entry(pack2(p, o)).or_default().push(i);
            s_map.entry(s).or_default().push(i);
            p_map.entry(p).or_default().push(i);
            o_map.entry(o).or_default().push(i);
        }
        let scores = cols.scores();
        let by_score_desc = |a: &u32, b: &u32| {
            let (sa, sb) = (scores[*a as usize], scores[*b as usize]);
            sb.cmp(&sa).then_with(|| a.cmp(b))
        };
        // Six list families, one entry per triple each.
        let mut postings = Vec::with_capacity(6 * n);
        let mut all: Vec<u32> = (0..n as u32).collect();
        all.sort_unstable_by(by_score_desc);
        PatternIndexes {
            spo,
            sp: freeze(sp, &mut postings, &by_score_desc),
            so: freeze(so, &mut postings, &by_score_desc),
            po: freeze(po, &mut postings, &by_score_desc),
            s: freeze(s_map, &mut postings, &by_score_desc),
            p: freeze(p_map, &mut postings, &by_score_desc),
            o: freeze(o_map, &mut postings, &by_score_desc),
            postings,
            all,
        }
    }

    /// Approximate heap size of the indexes in bytes (diagnostics only).
    pub fn approx_bytes(&self) -> usize {
        fn map_bytes<K, V>(len: usize) -> usize {
            len * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 8)
        }
        (self.postings.len() + self.all.len()) * 4
            + map_bytes::<(TermId, TermId, TermId), u32>(self.spo.len())
            + map_bytes::<u64, PostingRange>(self.sp.len() + self.so.len() + self.po.len())
            + map_bytes::<TermId, PostingRange>(self.s.len() + self.p.len() + self.o.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;
    use specqp_common::Score;

    fn cols(rows: &[(u32, u32, u32, f64)]) -> TripleColumns {
        let mut c = TripleColumns::new();
        for &(s, p, o, score) in rows {
            c.push(
                Triple::new(TermId(s), TermId(p), TermId(o)),
                Score::new(score),
            );
        }
        c
    }

    #[test]
    fn posting_lists_sorted_by_score_desc() {
        let cols = cols(&[
            (1, 10, 100, 1.0),
            (2, 10, 100, 5.0),
            (3, 10, 100, 3.0),
            (1, 10, 101, 9.0),
        ]);
        let idx = PatternIndexes::build(&cols);
        let list = idx.list(idx.po[&pack2(TermId(10), TermId(100))]);
        let scores: Vec<f64> = list
            .iter()
            .map(|&i| cols.score(i as usize).value())
            .collect();
        assert_eq!(scores, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn ties_break_by_triple_index() {
        let cols = cols(&[(1, 10, 100, 2.0), (2, 10, 100, 2.0), (3, 10, 100, 2.0)]);
        let idx = PatternIndexes::build(&cols);
        let list = idx.list(idx.po[&pack2(TermId(10), TermId(100))]);
        assert_eq!(list, &[0, 1, 2]);
    }

    #[test]
    fn all_lists_cover_each_triple() {
        let cols = cols(&[(1, 10, 100, 1.0), (2, 11, 101, 2.0)]);
        let idx = PatternIndexes::build(&cols);
        assert_eq!(idx.all.len(), 2);
        assert_eq!(idx.s.len(), 2);
        assert_eq!(idx.p.len(), 2);
        assert_eq!(idx.o.len(), 2);
        assert_eq!(idx.spo.len(), 2);
        // global list is sorted desc
        assert_eq!(idx.all, vec![1, 0]);
    }

    #[test]
    fn arena_holds_one_entry_per_triple_per_family() {
        let cols = cols(&[(1, 10, 100, 1.0), (2, 10, 100, 5.0), (2, 11, 101, 2.0)]);
        let idx = PatternIndexes::build(&cols);
        assert_eq!(idx.postings.len(), 6 * cols.len());
        // Every range resolves without overlap gaps: total lengths add up.
        let total: usize = idx
            .sp
            .values()
            .chain(idx.so.values())
            .chain(idx.po.values())
            .chain(idx.s.values())
            .chain(idx.p.values())
            .chain(idx.o.values())
            .map(|r| r.len as usize)
            .sum();
        assert_eq!(total, idx.postings.len());
    }
}
