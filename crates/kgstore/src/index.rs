//! Pattern-signature indexes with score-sorted posting lists.
//!
//! For every signature with 1 or 2 bound components there is a *sorted-array
//! map* (`PostingMap`) from the bound key to a posting list of triple
//! indexes, sorted by descending triple score (ties broken by triple index
//! for determinism). The fully unbound signature keeps one global sorted
//! list; the fully bound signature keeps a sorted membership array
//! (`TripleMap`).
//!
//! All posting lists live in **one shared arena** (`postings`); the maps
//! store `(start, len)` ranges into it. One contiguous buffer instead of one
//! heap allocation per key keeps scans cache-dense.
//!
//! The sorted-array layout (keys, starts and lens as parallel flat columns)
//! is deliberately identical to the snapshot-v2 on-disk sections: loading a
//! snapshot is a handful of bulk column copies with **no per-entry hashing
//! or insertion** — the restart path pages the index in rather than
//! rebuilding it. Lookups are binary searches, paid once per scan
//! construction, not per row.
//!
//! This mirrors what the paper gets from its PostgreSQL backend: "the
//! database engine used to retrieve the matches for triple patterns in
//! sorted order" (§4.4) — every access path streams matches best-first.

use crate::columns::TripleColumns;
use crate::pattern_key::{pack2, pack3};
use specqp_common::TermId;

/// A `(start, len)` window into the shared postings arena.
///
/// `start` is u64 because the arena concatenates six per-signature list
/// families (each up to one entry per triple), so its total length can
/// exceed `u32::MAX` even though individual triple ids cannot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PostingRange {
    pub(crate) start: u64,
    pub(crate) len: u32,
}

/// A sorted-array map from a fixed-width key to a [`PostingRange`].
///
/// Keys are strictly ascending; `starts`/`lens` are parallel columns. The
/// three flat vectors round-trip to the snapshot file as three bulk column
/// copies.
#[derive(Debug, Clone)]
pub(crate) struct PostingMap<K> {
    pub(crate) keys: Vec<K>,
    pub(crate) starts: Vec<u64>,
    pub(crate) lens: Vec<u32>,
}

// Manual impl: the derive would demand `K: Default`, which TermId lacks.
impl<K> Default for PostingMap<K> {
    fn default() -> Self {
        PostingMap {
            keys: Vec::new(),
            starts: Vec::new(),
            lens: Vec::new(),
        }
    }
}

impl<K: Ord + Copy> PostingMap<K> {
    /// Binary-search lookup.
    #[inline]
    pub(crate) fn get(&self, key: K) -> Option<PostingRange> {
        self.keys.binary_search(&key).ok().map(|i| PostingRange {
            start: self.starts[i],
            len: self.lens[i],
        })
    }

    /// Number of keys.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Assembles a map from its three columns, validating that keys are
    /// strictly ascending (the sorted-array invariant every lookup relies
    /// on) and that the columns are parallel.
    pub(crate) fn from_columns(
        keys: Vec<K>,
        starts: Vec<u64>,
        lens: Vec<u32>,
    ) -> Option<PostingMap<K>> {
        if keys.len() != starts.len() || keys.len() != lens.len() {
            return None;
        }
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(PostingMap { keys, starts, lens })
    }
}

/// A sorted-array membership map for fully bound (s,p,o) keys, packed into
/// u128 (strictly ascending) with the triple's storage index alongside.
#[derive(Debug, Default, Clone)]
pub(crate) struct TripleMap {
    pub(crate) keys: Vec<u128>,
    pub(crate) vals: Vec<u32>,
}

impl TripleMap {
    /// Binary-search lookup of a packed (s,p,o) key.
    #[inline]
    pub(crate) fn get(&self, key: u128) -> Option<u32> {
        self.keys.binary_search(&key).ok().map(|i| self.vals[i])
    }

    /// Number of stored triples.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Assembles a map from its two columns, validating strict key order.
    pub(crate) fn from_columns(keys: Vec<u128>, vals: Vec<u32>) -> Option<TripleMap> {
        if keys.len() != vals.len() || keys.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(TripleMap { keys, vals })
    }
}

/// Immutable indexes over a triple table. Built once by
/// [`KnowledgeGraphBuilder::build`](crate::KnowledgeGraphBuilder::build).
#[derive(Debug, Default)]
pub struct PatternIndexes {
    /// packed (s,p,o) → triple index (duplicates are merged by the builder).
    pub(crate) spo: TripleMap,
    /// packed (s,p) → postings range
    pub(crate) sp: PostingMap<u64>,
    /// packed (s,o) → postings range
    pub(crate) so: PostingMap<u64>,
    /// packed (p,o) → postings range
    pub(crate) po: PostingMap<u64>,
    /// s → postings range
    pub(crate) s: PostingMap<TermId>,
    /// p → postings range
    pub(crate) p: PostingMap<TermId>,
    /// o → postings range
    pub(crate) o: PostingMap<TermId>,
    /// Shared arena holding every keyed posting list back to back.
    pub(crate) postings: Vec<u32>,
    /// all triples, score-descending
    pub(crate) all: Vec<u32>,
}

/// Builds one list family: sorts `(key, triple)` pairs by
/// `(key asc, score desc, triple asc)`, then emits runs of equal keys as
/// arena-backed posting lists. Per-list contents end up in exactly the order
/// `by_score_desc` dictates — the same order the row/block scans stream.
fn build_family<K: Ord + Copy>(
    n: usize,
    key_of: impl Fn(usize) -> K,
    by_score_desc: &impl Fn(&u32, &u32) -> std::cmp::Ordering,
    arena: &mut Vec<u32>,
) -> PostingMap<K> {
    let mut entries: Vec<(K, u32)> = (0..n as u32).map(|i| (key_of(i as usize), i)).collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| by_score_desc(&a.1, &b.1)));
    let mut map = PostingMap::default();
    let mut i = 0;
    while i < entries.len() {
        let key = entries[i].0;
        let start = arena.len() as u64;
        let mut j = i;
        while j < entries.len() && entries[j].0 == key {
            arena.push(entries[j].1);
            j += 1;
        }
        map.keys.push(key);
        map.starts.push(start);
        map.lens.push((j - i) as u32);
        i = j;
    }
    map
}

impl PatternIndexes {
    /// Resolves a range to its arena slice.
    #[inline]
    pub(crate) fn list(&self, r: PostingRange) -> &[u32] {
        &self.postings[r.start as usize..r.start as usize + r.len as usize]
    }

    /// Builds all indexes for `cols`. Each posting list ends up sorted by
    /// `(score desc, triple index asc)`.
    ///
    /// Each family is one flat sort over `(key, triple)` pairs; the sort
    /// passes read only the key and score columns — the columnar layout
    /// keeps both cache-dense.
    pub(crate) fn build(cols: &TripleColumns) -> Self {
        let n = cols.len();
        let (subjects, predicates, objects) = (cols.subjects(), cols.predicates(), cols.objects());
        let scores = cols.scores();
        let by_score_desc = |a: &u32, b: &u32| {
            let (sa, sb) = (scores[*a as usize], scores[*b as usize]);
            sb.cmp(&sa).then_with(|| a.cmp(b))
        };

        let mut spo_entries: Vec<(u128, u32)> = (0..n as u32)
            .map(|i| {
                let u = i as usize;
                (pack3(subjects[u], predicates[u], objects[u]), i)
            })
            .collect();
        spo_entries.sort_unstable_by_key(|(k, _)| *k);
        let spo = TripleMap {
            keys: spo_entries.iter().map(|(k, _)| *k).collect(),
            vals: spo_entries.iter().map(|(_, i)| *i).collect(),
        };

        // Six list families, one entry per triple each.
        let mut postings = Vec::with_capacity(6 * n);
        let sp = build_family(
            n,
            |i| pack2(subjects[i], predicates[i]),
            &by_score_desc,
            &mut postings,
        );
        let so = build_family(
            n,
            |i| pack2(subjects[i], objects[i]),
            &by_score_desc,
            &mut postings,
        );
        let po = build_family(
            n,
            |i| pack2(predicates[i], objects[i]),
            &by_score_desc,
            &mut postings,
        );
        let s = build_family(n, |i| subjects[i], &by_score_desc, &mut postings);
        let p = build_family(n, |i| predicates[i], &by_score_desc, &mut postings);
        let o = build_family(n, |i| objects[i], &by_score_desc, &mut postings);

        let mut all: Vec<u32> = (0..n as u32).collect();
        all.sort_unstable_by(by_score_desc);
        PatternIndexes {
            spo,
            sp,
            so,
            po,
            s,
            p,
            o,
            postings,
            all,
        }
    }

    /// Approximate heap size of the indexes in bytes (diagnostics only).
    pub fn approx_bytes(&self) -> usize {
        fn map_bytes<K>(len: usize) -> usize {
            len * (std::mem::size_of::<K>() + 8 + 4)
        }
        (self.postings.len() + self.all.len()) * 4
            + self.spo.len() * (16 + 4)
            + map_bytes::<u64>(self.sp.len() + self.so.len() + self.po.len())
            + map_bytes::<TermId>(self.s.len() + self.p.len() + self.o.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;
    use specqp_common::Score;

    fn cols(rows: &[(u32, u32, u32, f64)]) -> TripleColumns {
        let mut c = TripleColumns::new();
        for &(s, p, o, score) in rows {
            c.push(
                Triple::new(TermId(s), TermId(p), TermId(o)),
                Score::new(score),
            );
        }
        c
    }

    #[test]
    fn posting_lists_sorted_by_score_desc() {
        let cols = cols(&[
            (1, 10, 100, 1.0),
            (2, 10, 100, 5.0),
            (3, 10, 100, 3.0),
            (1, 10, 101, 9.0),
        ]);
        let idx = PatternIndexes::build(&cols);
        let list = idx.list(idx.po.get(pack2(TermId(10), TermId(100))).unwrap());
        let scores: Vec<f64> = list
            .iter()
            .map(|&i| cols.score(i as usize).value())
            .collect();
        assert_eq!(scores, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn ties_break_by_triple_index() {
        let cols = cols(&[(1, 10, 100, 2.0), (2, 10, 100, 2.0), (3, 10, 100, 2.0)]);
        let idx = PatternIndexes::build(&cols);
        let list = idx.list(idx.po.get(pack2(TermId(10), TermId(100))).unwrap());
        assert_eq!(list, &[0, 1, 2]);
    }

    #[test]
    fn all_lists_cover_each_triple() {
        let cols = cols(&[(1, 10, 100, 1.0), (2, 11, 101, 2.0)]);
        let idx = PatternIndexes::build(&cols);
        assert_eq!(idx.all.len(), 2);
        assert_eq!(idx.s.len(), 2);
        assert_eq!(idx.p.len(), 2);
        assert_eq!(idx.o.len(), 2);
        assert_eq!(idx.spo.len(), 2);
        // global list is sorted desc
        assert_eq!(idx.all, vec![1, 0]);
    }

    #[test]
    fn arena_holds_one_entry_per_triple_per_family() {
        let cols = cols(&[(1, 10, 100, 1.0), (2, 10, 100, 5.0), (2, 11, 101, 2.0)]);
        let idx = PatternIndexes::build(&cols);
        assert_eq!(idx.postings.len(), 6 * cols.len());
        // Every range resolves without overlap gaps: total lengths add up.
        let total: usize = [&idx.sp, &idx.so, &idx.po]
            .into_iter()
            .flat_map(|m| m.lens.iter())
            .chain(
                [&idx.s, &idx.p, &idx.o]
                    .into_iter()
                    .flat_map(|m| m.lens.iter()),
            )
            .map(|&l| l as usize)
            .sum();
        assert_eq!(total, idx.postings.len());
    }

    #[test]
    fn map_keys_are_strictly_ascending() {
        let cols = cols(&[
            (3, 10, 100, 1.0),
            (1, 12, 100, 5.0),
            (2, 11, 101, 2.0),
            (1, 10, 102, 4.0),
        ]);
        let idx = PatternIndexes::build(&cols);
        assert!(idx.spo.keys.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.sp.keys.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.s.keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn from_columns_rejects_unsorted_or_ragged() {
        assert!(PostingMap::from_columns(vec![2u64, 1], vec![0, 0], vec![1, 1]).is_none());
        assert!(PostingMap::from_columns(vec![1u64, 1], vec![0, 0], vec![1, 1]).is_none());
        assert!(PostingMap::from_columns(vec![1u64], vec![0, 0], vec![1]).is_none());
        assert!(PostingMap::from_columns(vec![1u64, 2], vec![0, 1], vec![1, 1]).is_some());
        assert!(TripleMap::from_columns(vec![5u128, 3], vec![0, 1]).is_none());
        assert!(TripleMap::from_columns(vec![3u128, 5], vec![0, 1]).is_some());
    }
}
