//! Pattern-signature indexes with score-sorted posting lists.
//!
//! For every signature with 1 or 2 bound components there is a hash map from
//! the bound key to a posting list of triple indexes, sorted by descending
//! triple score (ties broken by triple index for determinism). The fully
//! unbound signature keeps one global sorted list; the fully bound signature
//! keeps a membership map.
//!
//! This mirrors what the paper gets from its PostgreSQL backend: "the
//! database engine used to retrieve the matches for triple patterns in
//! sorted order" (§4.4) — every access path streams matches best-first.

use crate::pattern_key::pack2;
use crate::triple::ScoredTriple;
use specqp_common::{FxHashMap, TermId};

/// Immutable indexes over a triple table. Built once by
/// [`KnowledgeGraphBuilder::build`](crate::KnowledgeGraphBuilder::build).
#[derive(Debug, Default)]
pub struct PatternIndexes {
    /// (s,p,o) → triple index (duplicates are merged by the builder).
    pub(crate) spo: FxHashMap<(TermId, TermId, TermId), u32>,
    /// (s,p) → postings
    pub(crate) sp: FxHashMap<u64, Vec<u32>>,
    /// (s,o) → postings
    pub(crate) so: FxHashMap<u64, Vec<u32>>,
    /// (p,o) → postings
    pub(crate) po: FxHashMap<u64, Vec<u32>>,
    /// s → postings
    pub(crate) s: FxHashMap<TermId, Vec<u32>>,
    /// p → postings
    pub(crate) p: FxHashMap<TermId, Vec<u32>>,
    /// o → postings
    pub(crate) o: FxHashMap<TermId, Vec<u32>>,
    /// all triples, score-descending
    pub(crate) all: Vec<u32>,
}

impl PatternIndexes {
    /// Builds all indexes for `triples`. Each posting list ends up sorted by
    /// `(score desc, triple index asc)`.
    pub(crate) fn build(triples: &[ScoredTriple]) -> Self {
        let mut idx = PatternIndexes {
            all: (0..triples.len() as u32).collect(),
            ..PatternIndexes::default()
        };
        for (i, st) in triples.iter().enumerate() {
            let i = i as u32;
            let t = st.triple;
            idx.spo.insert((t.s, t.p, t.o), i);
            idx.sp.entry(pack2(t.s, t.p)).or_default().push(i);
            idx.so.entry(pack2(t.s, t.o)).or_default().push(i);
            idx.po.entry(pack2(t.p, t.o)).or_default().push(i);
            idx.s.entry(t.s).or_default().push(i);
            idx.p.entry(t.p).or_default().push(i);
            idx.o.entry(t.o).or_default().push(i);
        }
        let by_score_desc = |a: &u32, b: &u32| {
            let (sa, sb) = (triples[*a as usize].score, triples[*b as usize].score);
            sb.cmp(&sa).then_with(|| a.cmp(b))
        };
        for list in idx.sp.values_mut() {
            list.sort_unstable_by(by_score_desc);
        }
        for list in idx.so.values_mut() {
            list.sort_unstable_by(by_score_desc);
        }
        for list in idx.po.values_mut() {
            list.sort_unstable_by(by_score_desc);
        }
        for list in idx.s.values_mut() {
            list.sort_unstable_by(by_score_desc);
        }
        for list in idx.p.values_mut() {
            list.sort_unstable_by(by_score_desc);
        }
        for list in idx.o.values_mut() {
            list.sort_unstable_by(by_score_desc);
        }
        idx.all.sort_unstable_by(by_score_desc);
        idx
    }

    /// Approximate heap size of the indexes in bytes (diagnostics only).
    pub fn approx_bytes(&self) -> usize {
        fn map_bytes<K, V>(len: usize) -> usize {
            len * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 8)
        }
        let postings: usize = self
            .sp
            .values()
            .chain(self.so.values())
            .chain(self.po.values())
            .chain(self.s.values())
            .chain(self.p.values())
            .chain(self.o.values())
            .map(|v| v.len() * 4)
            .sum::<usize>()
            + self.all.len() * 4;
        postings
            + map_bytes::<(TermId, TermId, TermId), u32>(self.spo.len())
            + map_bytes::<u64, Vec<u32>>(self.sp.len() + self.so.len() + self.po.len())
            + map_bytes::<TermId, Vec<u32>>(self.s.len() + self.p.len() + self.o.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specqp_common::Score;

    fn t(s: u32, p: u32, o: u32, score: f64) -> ScoredTriple {
        ScoredTriple::new(TermId(s), TermId(p), TermId(o), Score::new(score))
    }

    #[test]
    fn posting_lists_sorted_by_score_desc() {
        let triples = vec![
            t(1, 10, 100, 1.0),
            t(2, 10, 100, 5.0),
            t(3, 10, 100, 3.0),
            t(1, 10, 101, 9.0),
        ];
        let idx = PatternIndexes::build(&triples);
        let list = &idx.po[&pack2(TermId(10), TermId(100))];
        let scores: Vec<f64> = list
            .iter()
            .map(|&i| triples[i as usize].score.value())
            .collect();
        assert_eq!(scores, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn ties_break_by_triple_index() {
        let triples = vec![t(1, 10, 100, 2.0), t(2, 10, 100, 2.0), t(3, 10, 100, 2.0)];
        let idx = PatternIndexes::build(&triples);
        let list = &idx.po[&pack2(TermId(10), TermId(100))];
        assert_eq!(list, &vec![0, 1, 2]);
    }

    #[test]
    fn all_lists_cover_each_triple() {
        let triples = vec![t(1, 10, 100, 1.0), t(2, 11, 101, 2.0)];
        let idx = PatternIndexes::build(&triples);
        assert_eq!(idx.all.len(), 2);
        assert_eq!(idx.s.len(), 2);
        assert_eq!(idx.p.len(), 2);
        assert_eq!(idx.o.len(), 2);
        assert_eq!(idx.spo.len(), 2);
        // global list is sorted desc
        assert_eq!(idx.all, vec![1, 0]);
    }
}
