//! Relaxed-query construction (Def. 8).

use crate::registry::{Relaxation, RelaxationRegistry};
use sparql::Query;

/// Applies one relaxation to the pattern at `idx`, producing
/// `Q′ = (Q \ q) ∪ q′` and the weight to multiply answer scores by.
pub fn apply_relaxation(query: &Query, idx: usize, relaxation: &Relaxation) -> (Query, f64) {
    (
        query.with_pattern_replaced(idx, relaxation.pattern),
        relaxation.weight,
    )
}

/// Enumerates every query reachable by relaxing **at most one pattern**
/// (the original query first, with weight 1). This is the unit the paper's
/// PLANGEN inspects; full multi-relaxation enumeration (the 48-query space
/// of the introduction example) is exponential and only needed by the naive
/// baseline, which instead merges per-pattern lists.
pub fn enumerate_relaxed_queries(
    query: &Query,
    registry: &RelaxationRegistry,
) -> Vec<(Query, f64)> {
    let mut out = vec![(query.clone(), 1.0)];
    for (i, p) in query.patterns().iter().enumerate() {
        for r in registry.relaxations_for(p) {
            out.push(apply_relaxation(query, i, &r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Position, TermRule};
    use sparql::{QueryBuilder, Term};
    use specqp_common::TermId;

    fn query() -> Query {
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, TermId(1), TermId(10));
        b.pattern(s, TermId(1), TermId(20));
        b.project(s);
        b.build().unwrap()
    }

    fn registry() -> RelaxationRegistry {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(11), 0.9));
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(12), 0.5));
        reg.add(TermRule::new(Position::Object, TermId(20), TermId(21), 0.7));
        reg
    }

    #[test]
    fn apply_replaces_one_pattern() {
        let q = query();
        let reg = registry();
        let r = reg.top_relaxation_for(&q.patterns()[0]).unwrap();
        let (q2, w) = apply_relaxation(&q, 0, &r);
        assert_eq!(w, 0.9);
        assert_eq!(q2.patterns()[0].o, Term::Const(TermId(11)));
        assert_eq!(q2.patterns()[1], q.patterns()[1]);
    }

    #[test]
    fn enumerate_counts_original_plus_single_relaxations() {
        let q = query();
        let reg = registry();
        let all = enumerate_relaxed_queries(&q, &reg);
        // 1 original + 2 for pattern 0 + 1 for pattern 1.
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].1, 1.0);
        // Weights of the relaxed ones are the rule weights.
        let mut weights: Vec<f64> = all[1..].iter().map(|(_, w)| *w).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(weights, vec![0.9, 0.7, 0.5]);
    }
}
