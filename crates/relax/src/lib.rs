//! Weighted query relaxation: rules, rule registries and rule mining.
//!
//! A weighted relaxation rule (Def. 7 of the paper) is `r = (q, q′, w)`: a
//! triple pattern `q` may be replaced by `q′` at a score penalty `w ∈ [0,1]`.
//! Rules are mined offline from the KG; this crate implements the two mining
//! schemes matching the paper's datasets:
//!
//! * [`HierarchyMiner`] — XKG-style: a class can relax to its siblings,
//!   parent and cousins in the type hierarchy, with weights decaying in the
//!   hierarchy distance (the paper obtains its XKG relaxations "using the
//!   scheme outlined in \[37\]"; hierarchy neighbourhoods are the dominant
//!   source of type relaxations there);
//! * [`CooccurrenceMiner`] — Twitter-style: term `T₁` relaxes to `T₂` with
//!   weight `w = #tweets(T₁ ∧ T₂)/#tweets(T₁)` (§4.2, verbatim formula).
//!
//! Mined rules live in a [`RelaxationRegistry`]; given a triple pattern the
//! registry enumerates its [`Relaxation`]s in descending weight order, which
//! is the order both the Incremental Merge and PLANGEN consume them in.

pub mod chain;
pub mod cooccur;
pub mod hierarchy;
pub mod registry;
pub mod relaxed_query;
pub mod rule;

pub use chain::{ChainRelaxation, ChainRule, ChainRuleSet};
pub use cooccur::CooccurrenceMiner;
pub use hierarchy::{HierarchyMiner, TypeHierarchy};
pub use registry::{Relaxation, RelaxationRegistry};
pub use relaxed_query::{apply_relaxation, enumerate_relaxed_queries};
pub use rule::{Position, TermRule};
