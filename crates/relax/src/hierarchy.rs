//! Type-hierarchy relaxation mining (XKG-style).
//!
//! XKG's type relaxations (`<singer>` → `<vocalist>`, `<artist>`, …) come
//! from neighbourhoods in the class taxonomy. [`TypeHierarchy`] holds a
//! parent relation over class terms (either supplied programmatically by a
//! generator or mined from `subClassOf` triples); [`HierarchyMiner`] emits
//! one object-position [`TermRule`] per (class, related class) pair with a
//! relationship-aware weight (parent / child / sibling / `decay^distance`
//! for farther relatives, plus a deterministic jitter), optionally
//! modulated by how much the two classes' instance sets overlap.

use crate::registry::RelaxationRegistry;
use crate::rule::{Position, TermRule};
use kgstore::{KnowledgeGraph, PatternKey};
use specqp_common::{FxHashMap, FxHashSet, TermId};

/// A forest over class terms (each class has at most one parent).
#[derive(Default, Debug, Clone)]
pub struct TypeHierarchy {
    parent: FxHashMap<TermId, TermId>,
    children: FxHashMap<TermId, Vec<TermId>>,
}

impl TypeHierarchy {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `child`'s parent. Later calls overwrite earlier ones.
    pub fn add_edge(&mut self, child: TermId, parent: TermId) {
        if let Some(old) = self.parent.insert(child, parent) {
            if let Some(v) = self.children.get_mut(&old) {
                v.retain(|c| *c != child);
            }
        }
        self.children.entry(parent).or_default().push(child);
    }

    /// Builds the hierarchy from every `〈c, subclass_pred, parent〉` triple
    /// in the graph.
    pub fn from_graph(graph: &KnowledgeGraph, subclass_pred: TermId) -> Self {
        let mut h = TypeHierarchy::new();
        for (t, _) in graph
            .matches(PatternKey::p_only(subclass_pred))
            .iter_triples()
        {
            h.add_edge(t.s, t.o);
        }
        h
    }

    /// The parent of `class`, if any.
    pub fn parent(&self, class: TermId) -> Option<TermId> {
        self.parent.get(&class).copied()
    }

    /// Children of `class`.
    pub fn children(&self, class: TermId) -> &[TermId] {
        self.children.get(&class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All classes that appear as child or parent.
    pub fn classes(&self) -> FxHashSet<TermId> {
        let mut s: FxHashSet<TermId> = self.parent.keys().copied().collect();
        s.extend(self.children.keys().copied());
        s
    }

    /// Classes within `max_distance` tree edges of `class` (excluding
    /// itself), with their distances: siblings are at distance 2, the
    /// parent at 1, cousins at 4, children at 1, …
    pub fn neighbourhood(&self, class: TermId, max_distance: usize) -> Vec<(TermId, usize)> {
        // BFS over the undirected tree.
        let mut dist: FxHashMap<TermId, usize> = FxHashMap::default();
        dist.insert(class, 0);
        let mut frontier = vec![class];
        let mut out = Vec::new();
        while let Some(c) = frontier.pop() {
            let d = dist[&c];
            if d >= max_distance {
                continue;
            }
            let push = |n: TermId,
                        dist: &mut FxHashMap<TermId, usize>,
                        frontier: &mut Vec<TermId>,
                        out: &mut Vec<(TermId, usize)>| {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(n) {
                    e.insert(d + 1);
                    out.push((n, d + 1));
                    frontier.push(n);
                }
            };
            if let Some(p) = self.parent(c) {
                push(p, &mut dist, &mut frontier, &mut out);
            }
            for &ch in self.children(c) {
                push(ch, &mut dist, &mut frontier, &mut out);
            }
        }
        out.sort_by_key(|&(t, d)| (d, t));
        out
    }
}

/// Mines object-position type relaxations from a [`TypeHierarchy`].
///
/// Weights are *relationship-aware*, mirroring the paper's Table 1 where
/// `<singer>` relaxes to its co-hyponym `<vocalist>` (weight 0.8) before the
/// hypernym `<artist>`: siblings rank above the parent, which ranks above
/// more distant relatives; a small deterministic per-pair jitter breaks ties
/// so different classes get differently ordered rule lists, as mined rules
/// would.
#[derive(Debug, Clone)]
pub struct HierarchyMiner {
    /// The type predicate the rules are contextualized to (`rdf:type`).
    pub type_predicate: TermId,
    /// Weight of sibling classes (same parent).
    pub sibling_weight: f64,
    /// Weight of the parent class.
    pub parent_weight: f64,
    /// Weight of child classes.
    pub child_weight: f64,
    /// Fallback decay per tree edge for more distant relatives: weight
    /// `decay^d`.
    pub decay: f64,
    /// Half-width of the deterministic per-pair weight jitter.
    pub jitter: f64,
    /// Maximum tree distance explored.
    pub max_distance: usize,
    /// Cap on rules emitted per source class (best-weight first).
    pub max_rules_per_class: usize,
    /// If true, multiply the weight by the Jaccard-style overlap of
    /// instance sets, when both classes have instances (pure taxonomy
    /// weights otherwise).
    pub use_instance_overlap: bool,
}

impl HierarchyMiner {
    /// A miner with the defaults used by the XKG generator: hypernym-first
    /// weights `parent 0.85 > sibling ≈ 0.72 > grandparent/uncles/cousins`
    /// (i.e. the plain `decay^distance` ladder with decay 0.85), a ±0.02
    /// deterministic jitter, distance ≤ 4, at most 15 rules per class.
    ///
    /// Generalizing to the *super*-class first matches how the planner's
    /// single-relaxation check works best: the top-weighted relaxation is
    /// then a superset of the original pattern, so its join is never empty
    /// when the original's is not. Sibling-first weighting (Table 1's
    /// `singer → vocalist` ordering) is available by raising
    /// `sibling_weight` above `parent_weight`.
    pub fn new(type_predicate: TermId) -> Self {
        HierarchyMiner {
            type_predicate,
            sibling_weight: 0.7225, // decay²
            parent_weight: 0.85,    // decay¹
            child_weight: 0.85,     // decay¹
            decay: 0.85,
            jitter: 0.02,
            max_distance: 4,
            max_rules_per_class: 15,
            use_instance_overlap: false,
        }
    }

    /// Emits rules for every class of the hierarchy into a fresh registry.
    pub fn mine(&self, graph: &KnowledgeGraph, hierarchy: &TypeHierarchy) -> RelaxationRegistry {
        let mut reg = RelaxationRegistry::new();
        self.mine_into(graph, hierarchy, &mut reg);
        reg
    }

    /// Emits rules into an existing registry.
    pub fn mine_into(
        &self,
        graph: &KnowledgeGraph,
        hierarchy: &TypeHierarchy,
        registry: &mut RelaxationRegistry,
    ) {
        let mut classes: Vec<TermId> = hierarchy.classes().into_iter().collect();
        classes.sort();
        for class in classes {
            let mut candidates: Vec<TermRule> = Vec::new();
            for (other, d) in hierarchy.neighbourhood(class, self.max_distance) {
                let mut w = self.base_weight(hierarchy, class, other, d);
                // Deterministic per-pair jitter in ±self.jitter.
                let h = specqp_common::hash::fx_hash_one(&(class, other));
                w += ((h % 1000) as f64 / 1000.0 - 0.5) * 2.0 * self.jitter;
                if self.use_instance_overlap {
                    w *= 0.5 + 0.5 * self.instance_overlap(graph, class, other);
                }
                if w <= 0.0 {
                    continue;
                }
                candidates.push(TermRule::with_context(
                    Position::Object,
                    class,
                    other,
                    w.clamp(0.01, 1.0 - 1e-6),
                    self.type_predicate,
                ));
            }
            candidates.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite"));
            candidates.truncate(self.max_rules_per_class);
            registry.extend(candidates);
        }
    }

    /// Relationship-aware base weight of relaxing `class` to `other` at
    /// tree distance `d`.
    fn base_weight(
        &self,
        hierarchy: &TypeHierarchy,
        class: TermId,
        other: TermId,
        d: usize,
    ) -> f64 {
        if hierarchy.parent(class) == Some(other) {
            self.parent_weight
        } else if hierarchy.parent(other) == Some(class) {
            self.child_weight
        } else if d == 2
            && hierarchy.parent(class).is_some()
            && hierarchy.parent(class) == hierarchy.parent(other)
        {
            self.sibling_weight
        } else {
            self.decay.powi(d as i32)
        }
    }

    /// |inst(a) ∩ inst(b)| / |inst(a) ∪ inst(b)| over `rdf:type` instances.
    fn instance_overlap(&self, graph: &KnowledgeGraph, a: TermId, b: TermId) -> f64 {
        let inst = |c: TermId| -> FxHashSet<TermId> {
            graph
                .matches(PatternKey::po(self.type_predicate, c))
                .iter_triples()
                .map(|(t, _)| t.s)
                .collect()
        };
        let (ia, ib) = (inst(a), inst(b));
        if ia.is_empty() && ib.is_empty() {
            return 0.0;
        }
        let inter = ia.intersection(&ib).count() as f64;
        let union = (ia.len() + ib.len()) as f64 - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use sparql::{TriplePattern, Var};

    /// entity ← {person ← {singer, vocalist, writer}, place ← {city}}
    fn setup() -> (KnowledgeGraph, TypeHierarchy) {
        let mut b = KnowledgeGraphBuilder::new();
        let ty = b.intern("rdf:type");
        for (e, c, s) in [
            ("shakira", "singer", 10.0),
            ("beyonce", "singer", 9.0),
            ("adele", "vocalist", 8.0),
            ("dylan", "writer", 7.0),
            ("paris", "city", 5.0),
        ] {
            b.add(e, "rdf:type", c, s);
        }
        for (c, p) in [
            ("singer", "person"),
            ("vocalist", "person"),
            ("writer", "person"),
            ("city", "place"),
            ("person", "entity"),
            ("place", "entity"),
        ] {
            b.add(c, "subClassOf", p, 1.0);
        }
        let _ = ty;
        let g = b.build();
        let sub = g.dictionary().lookup("subClassOf").unwrap();
        let h = TypeHierarchy::from_graph(&g, sub);
        (g, h)
    }

    #[test]
    fn hierarchy_structure() {
        let (g, h) = setup();
        let d = g.dictionary();
        let singer = d.lookup("singer").unwrap();
        let person = d.lookup("person").unwrap();
        assert_eq!(h.parent(singer), Some(person));
        assert_eq!(h.children(person).len(), 3);
    }

    #[test]
    fn neighbourhood_distances() {
        let (g, h) = setup();
        let d = g.dictionary();
        let singer = d.lookup("singer").unwrap();
        let person = d.lookup("person").unwrap();
        let vocalist = d.lookup("vocalist").unwrap();
        let city = d.lookup("city").unwrap();
        let n = h.neighbourhood(singer, 4);
        let get = |t: TermId| n.iter().find(|(c, _)| *c == t).map(|&(_, d)| d);
        assert_eq!(get(person), Some(1));
        assert_eq!(get(vocalist), Some(2));
        assert_eq!(get(city), Some(4)); // singer→person→entity→place→city
    }

    #[test]
    fn mined_weights_decay_with_distance() {
        let (g, h) = setup();
        let d = g.dictionary();
        let ty = d.lookup("rdf:type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let miner = HierarchyMiner::new(ty);
        let reg = miner.mine(&g, &h);
        let pat = TriplePattern::new(Var(0), ty, singer);
        let rs = reg.relaxations_for(&pat);
        assert!(rs.len() >= 4, "got {}", rs.len());
        // Parent (d=1) outranks siblings (d=2) outranks entity (d=2? no — 2
        // levels up = d=2 as well)… weights must be non-increasing.
        for w in rs.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        let top = reg.top_relaxation_for(&pat).unwrap();
        // Hypernym-first default: the top relaxation is the parent class at
        // ~parent_weight (modulo ±jitter).
        assert!(
            (top.weight - 0.85).abs() <= 0.021,
            "top relaxation weight {}",
            top.weight
        );
    }

    #[test]
    fn rules_respect_type_context() {
        let (g, h) = setup();
        let d = g.dictionary();
        let ty = d.lookup("rdf:type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let other_pred = d.lookup("subClassOf").unwrap();
        let reg = HierarchyMiner::new(ty).mine(&g, &h);
        // Rules fire on rdf:type patterns only.
        let p1 = TriplePattern::new(Var(0), ty, singer);
        let p2 = TriplePattern::new(Var(0), other_pred, singer);
        assert!(reg.relaxation_count(&p1) > 0);
        assert_eq!(reg.relaxation_count(&p2), 0);
    }

    #[test]
    fn instance_overlap_mode_changes_weights() {
        let (g, h) = setup();
        let d = g.dictionary();
        let ty = d.lookup("rdf:type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let mut miner = HierarchyMiner::new(ty);
        miner.use_instance_overlap = true;
        let reg = miner.mine(&g, &h);
        let pat = TriplePattern::new(Var(0), ty, singer);
        let rs = reg.relaxations_for(&pat);
        // Disjoint instance sets → overlap 0 → weights halved vs the plain
        // relationship weights.
        let top = &rs[0];
        assert!(top.weight < 0.6, "weight {}", top.weight);
    }

    #[test]
    fn max_rules_cap() {
        let (g, h) = setup();
        let d = g.dictionary();
        let ty = d.lookup("rdf:type").unwrap();
        let singer = d.lookup("singer").unwrap();
        let mut miner = HierarchyMiner::new(ty);
        miner.max_rules_per_class = 2;
        let reg = miner.mine(&g, &h);
        let pat = TriplePattern::new(Var(0), ty, singer);
        assert_eq!(reg.relaxation_count(&pat), 2);
    }
}
