//! Co-occurrence relaxation mining (Twitter-style, §4.2).
//!
//! For the tweet dataset the paper derives relaxations from tag
//! co-occurrence: `r = (T₁, T₂, w)` with
//!
//! ```text
//! w = #tweets_having_T1_and_T2 / #tweets_having_T1
//! ```
//!
//! [`CooccurrenceMiner`] computes exactly that over all `〈s, pred, T〉`
//! triples of a graph: subjects are "tweets", objects are "terms".

use crate::registry::RelaxationRegistry;
use crate::rule::{Position, TermRule};
use kgstore::{KnowledgeGraph, PatternKey};
use specqp_common::{FxHashMap, TermId};

/// Mines object-position rules with predicate context `predicate` from
/// subject–term co-occurrence.
#[derive(Debug, Clone)]
pub struct CooccurrenceMiner {
    /// The predicate whose objects are the co-occurring terms (`hasTag`).
    pub predicate: TermId,
    /// Rules below this weight are discarded.
    pub min_weight: f64,
    /// Cap on rules per source term (best-weight first).
    pub max_rules_per_term: usize,
    /// Subjects with more than this many terms are skipped when counting
    /// pairs (guards against quadratic blow-up on pathological rows).
    pub max_terms_per_subject: usize,
}

impl CooccurrenceMiner {
    /// Miner with the defaults used by the Twitter generator.
    pub fn new(predicate: TermId) -> Self {
        CooccurrenceMiner {
            predicate,
            min_weight: 0.05,
            max_rules_per_term: 20,
            max_terms_per_subject: 64,
        }
    }

    /// Computes the rules and returns a fresh registry.
    pub fn mine(&self, graph: &KnowledgeGraph) -> RelaxationRegistry {
        let mut reg = RelaxationRegistry::new();
        self.mine_into(graph, &mut reg);
        reg
    }

    /// Computes the rules into an existing registry.
    pub fn mine_into(&self, graph: &KnowledgeGraph, registry: &mut RelaxationRegistry) {
        // Group terms by subject.
        let mut by_subject: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for (t, _) in graph
            .matches(PatternKey::p_only(self.predicate))
            .iter_triples()
        {
            by_subject.entry(t.s).or_default().push(t.o);
        }

        // Count per-term totals and ordered-pair co-occurrences.
        let mut term_count: FxHashMap<TermId, u64> = FxHashMap::default();
        let mut pair_count: FxHashMap<(TermId, TermId), u64> = FxHashMap::default();
        for terms in by_subject.values_mut() {
            terms.sort_unstable();
            terms.dedup();
            if terms.len() > self.max_terms_per_subject {
                continue;
            }
            for &t in terms.iter() {
                *term_count.entry(t).or_insert(0) += 1;
            }
            for i in 0..terms.len() {
                for j in 0..terms.len() {
                    if i != j {
                        *pair_count.entry((terms[i], terms[j])).or_insert(0) += 1;
                    }
                }
            }
        }

        // Emit rules grouped by source term, capped.
        let mut by_source: FxHashMap<TermId, Vec<TermRule>> = FxHashMap::default();
        for (&(t1, t2), &both) in &pair_count {
            let total = term_count[&t1];
            if total == 0 {
                continue;
            }
            let w = (both as f64 / total as f64).min(1.0 - 1e-6);
            if w < self.min_weight {
                continue;
            }
            by_source
                .entry(t1)
                .or_default()
                .push(TermRule::with_context(
                    Position::Object,
                    t1,
                    t2,
                    w,
                    self.predicate,
                ));
        }
        let mut sources: Vec<TermId> = by_source.keys().copied().collect();
        sources.sort();
        for s in sources {
            let mut rules = by_source.remove(&s).expect("key exists");
            rules.sort_by(|a, b| {
                b.weight
                    .partial_cmp(&a.weight)
                    .expect("finite")
                    .then_with(|| a.to.cmp(&b.to))
            });
            rules.truncate(self.max_rules_per_term);
            registry.extend(rules);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use sparql::{TriplePattern, Var};

    /// Tweets: t1{a,b}, t2{a,b}, t3{a,c}, t4{a}, t5{b}.
    fn graph() -> KnowledgeGraph {
        let mut b = KnowledgeGraphBuilder::new();
        for (tweet, tags) in [
            ("t1", vec!["a", "b"]),
            ("t2", vec!["a", "b"]),
            ("t3", vec!["a", "c"]),
            ("t4", vec!["a"]),
            ("t5", vec!["b"]),
        ] {
            for tag in tags {
                b.add(tweet, "hasTag", tag, 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn weights_match_paper_formula() {
        let g = graph();
        let d = g.dictionary();
        let has = d.lookup("hasTag").unwrap();
        let a = d.lookup("a").unwrap();
        let bb = d.lookup("b").unwrap();
        let reg = CooccurrenceMiner::new(has).mine(&g);
        // w(a→b) = #tweets(a∧b)/#tweets(a) = 2/4 = 0.5
        let rs = reg.relaxations_for(&TriplePattern::new(Var(0), has, a));
        let w_ab = rs
            .iter()
            .find(|r| r.pattern.o.as_const() == Some(bb))
            .expect("a→b rule")
            .weight;
        assert!((w_ab - 0.5).abs() < 1e-9);
        // w(b→a) = 2/3.
        let rs = reg.relaxations_for(&TriplePattern::new(Var(0), has, bb));
        let w_ba = rs
            .iter()
            .find(|r| r.pattern.o.as_const() == Some(a))
            .expect("b→a rule")
            .weight;
        assert!((w_ba - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetry_is_preserved() {
        let g = graph();
        let d = g.dictionary();
        let has = d.lookup("hasTag").unwrap();
        let a = d.lookup("a").unwrap();
        let c = d.lookup("c").unwrap();
        let reg = CooccurrenceMiner::new(has).mine(&g);
        // w(c→a) = 1/1 (clamped below 1), w(a→c) = 1/4.
        let rs_c = reg.relaxations_for(&TriplePattern::new(Var(0), has, c));
        assert!(rs_c[0].weight > 0.99);
        let rs_a = reg.relaxations_for(&TriplePattern::new(Var(0), has, a));
        let w_ac = rs_a
            .iter()
            .find(|r| r.pattern.o.as_const() == Some(c))
            .unwrap()
            .weight;
        assert!((w_ac - 0.25).abs() < 1e-9);
    }

    #[test]
    fn min_weight_filters() {
        let g = graph();
        let d = g.dictionary();
        let has = d.lookup("hasTag").unwrap();
        let a = d.lookup("a").unwrap();
        let mut miner = CooccurrenceMiner::new(has);
        miner.min_weight = 0.4;
        let reg = miner.mine(&g);
        let rs = reg.relaxations_for(&TriplePattern::new(Var(0), has, a));
        // a→c (0.25) filtered; a→b (0.5) kept.
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn rules_only_fire_on_mined_predicate() {
        let g = graph();
        let d = g.dictionary();
        let has = d.lookup("hasTag").unwrap();
        let a = d.lookup("a").unwrap();
        let reg = CooccurrenceMiner::new(has).mine(&g);
        let other = TriplePattern::new(Var(0), a, a); // nonsense pattern, different predicate
        assert_eq!(reg.relaxation_count(&other), 0);
    }

    #[test]
    fn deterministic_output() {
        let g = graph();
        let d = g.dictionary();
        let has = d.lookup("hasTag").unwrap();
        let a = d.lookup("a").unwrap();
        let r1 = CooccurrenceMiner::new(has).mine(&g);
        let r2 = CooccurrenceMiner::new(has).mine(&g);
        let p = TriplePattern::new(Var(0), has, a);
        assert_eq!(r1.relaxations_for(&p), r2.relaxations_for(&p));
    }
}
