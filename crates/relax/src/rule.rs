//! Term-level relaxation rules.
//!
//! The paper's Def. 7 states rules over whole triple patterns; all rules the
//! paper actually mines rewrite exactly **one constant** of the pattern
//! (`<singer>` → `<vocalist>`, `<#intoyouvideo>` → `<video>`). A
//! [`TermRule`] captures that: position, source constant, target constant,
//! weight, plus an optional *predicate context* so that, e.g., a tag-term
//! rule only fires on `hasTag` patterns and a class rule only on `rdf:type`
//! patterns.

use specqp_common::TermId;

/// Which component of a triple pattern a rule rewrites.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Position {
    /// Rewrite the subject constant.
    Subject,
    /// Rewrite the predicate constant.
    Predicate,
    /// Rewrite the object constant.
    Object,
}

/// A single-term weighted relaxation rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TermRule {
    /// Position being rewritten.
    pub position: Position,
    /// The constant the rule applies to.
    pub from: TermId,
    /// The replacement constant.
    pub to: TermId,
    /// Score penalty `w ∈ (0, 1]` (Def. 7/8).
    pub weight: f64,
    /// If set, the rule only applies to patterns whose predicate constant
    /// equals this term (irrelevant for [`Position::Predicate`] rules).
    pub predicate_context: Option<TermId>,
}

impl TermRule {
    /// Creates a rule without predicate context.
    pub fn new(position: Position, from: TermId, to: TermId, weight: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&weight),
            "relaxation weight must be in [0,1], got {weight}"
        );
        TermRule {
            position,
            from,
            to,
            weight,
            predicate_context: None,
        }
    }

    /// Creates a rule that only fires when the pattern's predicate is
    /// `predicate`.
    pub fn with_context(
        position: Position,
        from: TermId,
        to: TermId,
        weight: f64,
        predicate: TermId,
    ) -> Self {
        let mut r = Self::new(position, from, to, weight);
        r.predicate_context = Some(predicate);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = TermRule::new(Position::Object, TermId(1), TermId(2), 0.8);
        assert_eq!(r.position, Position::Object);
        assert_eq!(r.predicate_context, None);
        let r = TermRule::with_context(Position::Object, TermId(1), TermId(2), 0.8, TermId(9));
        assert_eq!(r.predicate_context, Some(TermId(9)));
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn invalid_weight_panics() {
        let _ = TermRule::new(Position::Object, TermId(1), TermId(2), 1.5);
    }
}
