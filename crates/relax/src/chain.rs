//! Chain relaxations — the paper's future-work extension (§6: "we would
//! like to generate and use more complicated relaxations for the queries
//! like replacing a triple pattern with a chain of triple patterns").
//!
//! A [`ChainRule`] rewrites a pattern `〈S, p, O〉` into a *path*
//!
//! ```text
//! 〈S, p₁, ?f₁〉 . 〈?f₁, p₂, ?f₂〉 . … . 〈?f_{n−1}, p_n, O〉
//! ```
//!
//! with fresh intermediate variables, at weight `w`. Example:
//! `?x <wonAward> ?a` → `?x <nominatedFor> ?m . ?m <awardOf> ?a` with
//! weight 0.6.
//!
//! Chain relaxations are *executed* (the engine builds a rank join over the
//! chain, scales it into the weight range and merges it with the pattern's
//! other sources); speculative *planning* over chains is left for future
//! work exactly as in the paper — PLANGEN's single-relaxation check covers
//! term rules only.

use sparql::{Term, TriplePattern, Var};
use specqp_common::{FxHashMap, TermId};

/// A predicate-to-predicate-chain rewrite rule.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainRule {
    /// The predicate constant the rule applies to.
    pub from_predicate: TermId,
    /// The chain of predicates replacing it (length ≥ 2).
    pub chain: Vec<TermId>,
    /// Score penalty `w ∈ (0, 1]`.
    pub weight: f64,
}

impl ChainRule {
    /// Creates a chain rule.
    ///
    /// # Panics
    /// Panics if the chain is shorter than 2 or the weight is out of range.
    pub fn new(from_predicate: TermId, chain: Vec<TermId>, weight: f64) -> Self {
        assert!(chain.len() >= 2, "a chain rule needs ≥ 2 predicates");
        assert!(
            (0.0..=1.0).contains(&weight),
            "chain weight must be in [0,1], got {weight}"
        );
        ChainRule {
            from_predicate,
            chain,
            weight,
        }
    }
}

/// One applicable chain relaxation of a concrete pattern: the instantiated
/// chain patterns (with fresh variables already allocated) and the weight.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainRelaxation {
    /// The chain, in path order.
    pub patterns: Vec<TriplePattern>,
    /// The rule weight `w`.
    pub weight: f64,
    /// The fresh variables introduced (for projection back to the original
    /// pattern's variables).
    pub fresh_vars: Vec<Var>,
}

/// Stores chain rules indexed by source predicate.
#[derive(Default, Debug, Clone)]
pub struct ChainRuleSet {
    rules: FxHashMap<TermId, Vec<ChainRule>>,
    len: usize,
}

impl ChainRuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (kept sorted by descending weight per predicate).
    pub fn add(&mut self, rule: ChainRule) {
        let list = self.rules.entry(rule.from_predicate).or_default();
        let at = list
            .iter()
            .position(|r| r.weight < rule.weight)
            .unwrap_or(list.len());
        list.insert(at, rule);
        self.len += 1;
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Instantiates every chain applicable to `pattern`, allocating fresh
    /// variables from `fresh_from` upward. Only patterns with a constant
    /// predicate can chain-relax.
    pub fn chain_relaxations_for(
        &self,
        pattern: &TriplePattern,
        fresh_from: u32,
    ) -> Vec<ChainRelaxation> {
        let Some(p) = pattern.p.as_const() else {
            return Vec::new();
        };
        let Some(rules) = self.rules.get(&p) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(rules.len());
        let mut next_fresh = fresh_from;
        for rule in rules {
            let hops = rule.chain.len();
            let mut fresh_vars = Vec::with_capacity(hops - 1);
            for _ in 0..hops - 1 {
                fresh_vars.push(Var(next_fresh));
                next_fresh += 1;
            }
            let mut patterns = Vec::with_capacity(hops);
            for (i, &pred) in rule.chain.iter().enumerate() {
                let s: Term = if i == 0 {
                    pattern.s
                } else {
                    Term::Var(fresh_vars[i - 1])
                };
                let o: Term = if i == hops - 1 {
                    pattern.o
                } else {
                    Term::Var(fresh_vars[i])
                };
                patterns.push(TriplePattern::new(s, pred, o));
            }
            out.push(ChainRelaxation {
                patterns,
                weight: rule.weight,
                fresh_vars,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: u32, p: u32, o: u32, s_var: bool, o_var: bool) -> TriplePattern {
        TriplePattern::new(
            if s_var {
                Term::Var(Var(s))
            } else {
                Term::Const(TermId(s))
            },
            TermId(p),
            if o_var {
                Term::Var(Var(o))
            } else {
                Term::Const(TermId(o))
            },
        )
    }

    #[test]
    fn two_hop_instantiation() {
        let mut rs = ChainRuleSet::new();
        rs.add(ChainRule::new(
            TermId(10),
            vec![TermId(11), TermId(12)],
            0.6,
        ));
        // ?x <10> ?y  →  ?x <11> ?f . ?f <12> ?y
        let p = pat(0, 10, 1, true, true);
        let chains = rs.chain_relaxations_for(&p, 5);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.weight, 0.6);
        assert_eq!(c.patterns.len(), 2);
        assert_eq!(c.fresh_vars, vec![Var(5)]);
        assert_eq!(c.patterns[0].s, Term::Var(Var(0)));
        assert_eq!(c.patterns[0].o, Term::Var(Var(5)));
        assert_eq!(c.patterns[1].s, Term::Var(Var(5)));
        assert_eq!(c.patterns[1].o, Term::Var(Var(1)));
    }

    #[test]
    fn three_hop_and_constant_endpoints() {
        let mut rs = ChainRuleSet::new();
        rs.add(ChainRule::new(
            TermId(10),
            vec![TermId(11), TermId(12), TermId(13)],
            0.4,
        ));
        // ?x <10> <42> with a 3-hop chain keeps the constant object at the end.
        let p = pat(0, 10, 42, true, false);
        let chains = rs.chain_relaxations_for(&p, 9);
        let c = &chains[0];
        assert_eq!(c.patterns.len(), 3);
        assert_eq!(c.fresh_vars, vec![Var(9), Var(10)]);
        assert_eq!(c.patterns[2].o, Term::Const(TermId(42)));
    }

    #[test]
    fn weight_ordering_and_missing_predicate() {
        let mut rs = ChainRuleSet::new();
        rs.add(ChainRule::new(TermId(10), vec![TermId(1), TermId(2)], 0.3));
        rs.add(ChainRule::new(TermId(10), vec![TermId(3), TermId(4)], 0.7));
        let p = pat(0, 10, 1, true, true);
        let chains = rs.chain_relaxations_for(&p, 5);
        assert_eq!(chains.len(), 2);
        assert!(chains[0].weight > chains[1].weight);
        // Unrelated predicate: nothing.
        assert!(rs
            .chain_relaxations_for(&pat(0, 99, 1, true, true), 5)
            .is_empty());
        assert_eq!(rs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "≥ 2")]
    fn single_hop_chain_rejected() {
        let _ = ChainRule::new(TermId(1), vec![TermId(2)], 0.5);
    }

    #[test]
    fn variable_predicate_cannot_chain() {
        let mut rs = ChainRuleSet::new();
        rs.add(ChainRule::new(TermId(10), vec![TermId(1), TermId(2)], 0.3));
        let p = TriplePattern::new(Term::Var(Var(0)), Term::Var(Var(1)), Term::Var(Var(2)));
        assert!(rs.chain_relaxations_for(&p, 5).is_empty());
    }
}
