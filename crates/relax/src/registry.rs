//! The relaxation registry: rule storage and per-pattern enumeration.

use crate::rule::{Position, TermRule};
use sparql::{Term, TriplePattern};
use specqp_common::{FxHashMap, TermId};

/// One applicable relaxation of a concrete triple pattern: the relaxed
/// pattern (Def. 8: `Q′ = (Q \ q) ∪ q′`) and the rule weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Relaxation {
    /// The rewritten pattern `q′` (same variables as `q`).
    pub pattern: TriplePattern,
    /// The score penalty `w`.
    pub weight: f64,
}

/// Stores mined [`TermRule`]s indexed by `(position, source term)` and
/// enumerates the relaxations applicable to a pattern, best-weight first.
#[derive(Default, Debug, Clone)]
pub struct RelaxationRegistry {
    rules: FxHashMap<(Position, TermId), Vec<TermRule>>,
    len: usize,
}

impl RelaxationRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one rule. Rules for the same `(position, from)` key are kept
    /// sorted by descending weight (ties: insertion order).
    pub fn add(&mut self, rule: TermRule) {
        let list = self.rules.entry((rule.position, rule.from)).or_default();
        let at = list
            .iter()
            .position(|r| r.weight < rule.weight)
            .unwrap_or(list.len());
        list.insert(at, rule);
        self.len += 1;
    }

    /// Adds many rules.
    pub fn extend(&mut self, rules: impl IntoIterator<Item = TermRule>) {
        for r in rules {
            self.add(r);
        }
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no rules are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All relaxations applicable to `pattern`, sorted by descending weight.
    /// Each relaxation rewrites exactly one constant position. Rules whose
    /// predicate context does not match the pattern are skipped, as are
    /// rewrites that would leave the pattern unchanged.
    pub fn relaxations_for(&self, pattern: &TriplePattern) -> Vec<Relaxation> {
        let mut out: Vec<Relaxation> = Vec::new();
        let pred_const = pattern.p.as_const();

        let mut collect = |pos: Position, term: Option<TermId>| {
            let Some(from) = term else { return };
            let Some(rules) = self.rules.get(&(pos, from)) else {
                return;
            };
            for r in rules {
                if let Some(ctx) = r.predicate_context {
                    if pos != Position::Predicate && pred_const != Some(ctx) {
                        continue;
                    }
                }
                if r.to == from {
                    continue;
                }
                let mut p2 = *pattern;
                match pos {
                    Position::Subject => p2.s = Term::Const(r.to),
                    Position::Predicate => p2.p = Term::Const(r.to),
                    Position::Object => p2.o = Term::Const(r.to),
                }
                out.push(Relaxation {
                    pattern: p2,
                    weight: r.weight,
                });
            }
        };
        collect(Position::Subject, pattern.s.as_const());
        collect(Position::Predicate, pattern.p.as_const());
        collect(Position::Object, pattern.o.as_const());

        out.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .expect("finite weights")
                .then_with(|| format!("{:?}", a.pattern).cmp(&format!("{:?}", b.pattern)))
        });
        out.dedup_by(|a, b| a.pattern == b.pattern);
        out
    }

    /// The top-weighted relaxation of `pattern` — all PLANGEN needs (§3.2.1:
    /// "we need to check only the top-weighted relaxation for each triple
    /// pattern").
    pub fn top_relaxation_for(&self, pattern: &TriplePattern) -> Option<Relaxation> {
        self.relaxations_for(pattern).into_iter().next()
    }

    /// Number of relaxations applicable to `pattern` (workload validation:
    /// the paper requires ≥10 per XKG pattern, ≥5 per Twitter pattern).
    pub fn relaxation_count(&self, pattern: &TriplePattern) -> usize {
        self.relaxations_for(pattern).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::Var;

    fn pat(p: u32, o: u32) -> TriplePattern {
        TriplePattern::new(Var(0), TermId(p), TermId(o))
    }

    #[test]
    fn relaxations_sorted_by_weight() {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(11), 0.5));
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(12), 0.9));
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(13), 0.7));
        let rs = reg.relaxations_for(&pat(1, 10));
        let weights: Vec<f64> = rs.iter().map(|r| r.weight).collect();
        assert_eq!(weights, vec![0.9, 0.7, 0.5]);
        assert_eq!(
            reg.top_relaxation_for(&pat(1, 10)).unwrap().pattern.o,
            Term::Const(TermId(12))
        );
    }

    #[test]
    fn predicate_context_filters() {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            TermId(10),
            TermId(11),
            0.8,
            TermId(1),
        ));
        // Fires on predicate 1, not on predicate 2.
        assert_eq!(reg.relaxation_count(&pat(1, 10)), 1);
        assert_eq!(reg.relaxation_count(&pat(2, 10)), 0);
    }

    #[test]
    fn predicate_rules_rewrite_predicate() {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::new(
            Position::Predicate,
            TermId(1),
            TermId(2),
            0.6,
        ));
        let rs = reg.relaxations_for(&pat(1, 10));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].pattern.p, Term::Const(TermId(2)));
        assert_eq!(rs[0].pattern.o, Term::Const(TermId(10)));
    }

    #[test]
    fn multiple_positions_combine() {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(11), 0.9));
        reg.add(TermRule::new(
            Position::Predicate,
            TermId(1),
            TermId(2),
            0.7,
        ));
        let rs = reg.relaxations_for(&pat(1, 10));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].weight, 0.9);
        assert_eq!(rs[1].weight, 0.7);
    }

    #[test]
    fn variables_do_not_relax() {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::new(Position::Subject, TermId(0), TermId(5), 0.9));
        // Subject is a variable — subject rules cannot fire.
        assert_eq!(reg.relaxation_count(&pat(1, 10)), 0);
    }

    #[test]
    fn self_rewrite_skipped() {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(10), 0.9));
        assert_eq!(reg.relaxation_count(&pat(1, 10)), 0);
    }

    #[test]
    fn no_rules_no_relaxations() {
        let reg = RelaxationRegistry::new();
        assert!(reg.top_relaxation_for(&pat(1, 10)).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn duplicate_targets_deduped() {
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(11), 0.9));
        reg.add(TermRule::new(Position::Object, TermId(10), TermId(11), 0.4));
        let rs = reg.relaxations_for(&pat(1, 10));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].weight, 0.9, "max-weight duplicate wins");
    }
}
