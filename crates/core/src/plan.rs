//! Query plans: the join-group/singleton partition of §3.2.
//!
//! A plan for `Q = {q₁ … qₙ}` is a partition where one subset (the **join
//! group**) holds the patterns whose relaxations were pruned, and every
//! other subset is a **singleton** holding one pattern that keeps its
//! relaxations. The paper's example: plan `{{q₁,q₃},{q₂}}` processes q₂
//! through an incremental merge and joins q₁, q₃ directly.

use sparql::Query;
use specqp_common::Dictionary;

/// A speculative query plan: which patterns are processed *with* their
/// relaxations (singletons) and which are joined bare (join group).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryPlan {
    /// `relaxed[i]` ⇔ pattern `i` is a singleton (gets an incremental
    /// merge).
    relaxed: Vec<bool>,
}

impl QueryPlan {
    /// Plan with the given singleton pattern indices.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn new(n_patterns: usize, singleton_indices: &[usize]) -> Self {
        let mut relaxed = vec![false; n_patterns];
        for &i in singleton_indices {
            assert!(i < n_patterns, "pattern index {i} out of range");
            relaxed[i] = true;
        }
        QueryPlan { relaxed }
    }

    /// The TriniT plan: every pattern is a singleton (`{{q₁},{q₂},…}`,
    /// Fig. 2).
    pub fn all_relaxed(n_patterns: usize) -> Self {
        QueryPlan {
            relaxed: vec![true; n_patterns],
        }
    }

    /// The no-relaxation plan: plain rank joins over the original patterns.
    pub fn none_relaxed(n_patterns: usize) -> Self {
        QueryPlan {
            relaxed: vec![false; n_patterns],
        }
    }

    /// Number of patterns covered by the plan.
    pub fn len(&self) -> usize {
        self.relaxed.len()
    }

    /// `true` for the empty plan (no patterns).
    pub fn is_empty(&self) -> bool {
        self.relaxed.is_empty()
    }

    /// `true` if pattern `i` keeps its relaxations.
    pub fn is_relaxed(&self, i: usize) -> bool {
        self.relaxed[i]
    }

    /// Indices of the join group (non-relaxed patterns), ascending.
    pub fn join_group(&self) -> Vec<usize> {
        (0..self.relaxed.len())
            .filter(|&i| !self.relaxed[i])
            .collect()
    }

    /// Indices of the singletons (relaxed patterns), ascending.
    pub fn singletons(&self) -> Vec<usize> {
        (0..self.relaxed.len())
            .filter(|&i| self.relaxed[i])
            .collect()
    }

    /// Number of patterns whose relaxations are processed — the grouping
    /// key of Figures 7 and 9.
    pub fn relaxed_count(&self) -> usize {
        self.relaxed.iter().filter(|&&r| r).count()
    }

    /// `true` iff the partition covers each pattern exactly once (always
    /// true by construction; kept as an invariant check for property
    /// tests).
    pub fn is_valid_partition(&self) -> bool {
        let jg = self.join_group();
        let sg = self.singletons();
        jg.len() + sg.len() == self.relaxed.len() && jg.iter().all(|i| !sg.contains(i))
    }

    /// Human-readable plan description mirroring the paper's notation.
    pub fn explain(&self, query: &Query, dict: &Dictionary) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let jg = self.join_group();
        let _ = writeln!(s, "Spec-QP plan over {} patterns:", self.len());
        if jg.is_empty() {
            let _ = writeln!(s, "  join group: (empty — all patterns relaxed)");
        } else {
            let _ = writeln!(s, "  join group (rank joins over sorted lists):");
            for i in jg {
                let p = &query.patterns()[i];
                let _ = writeln!(s, "    q{}: {}", i + 1, render(p, query, dict));
            }
        }
        for i in self.singletons() {
            let p = &query.patterns()[i];
            let _ = writeln!(
                s,
                "  singleton (incremental merge): q{}: {}",
                i + 1,
                render(p, query, dict)
            );
        }
        s
    }
}

fn render(p: &sparql::TriplePattern, query: &Query, dict: &Dictionary) -> String {
    let term = |t: sparql::Term| match t {
        sparql::Term::Var(v) => format!("?{}", query.var_name(v)),
        sparql::Term::Const(id) => format!("<{}>", dict.name_or_unknown(id)),
    };
    format!("{} {} {}", term(p.s), term(p.p), term(p.o))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::QueryBuilder;
    use specqp_common::TermId;

    #[test]
    fn partition_accessors() {
        let p = QueryPlan::new(4, &[1, 3]);
        assert_eq!(p.join_group(), vec![0, 2]);
        assert_eq!(p.singletons(), vec![1, 3]);
        assert_eq!(p.relaxed_count(), 2);
        assert!(p.is_relaxed(1));
        assert!(!p.is_relaxed(0));
        assert!(p.is_valid_partition());
    }

    #[test]
    fn trinit_and_bare_plans() {
        let t = QueryPlan::all_relaxed(3);
        assert_eq!(t.relaxed_count(), 3);
        assert!(t.join_group().is_empty());
        let b = QueryPlan::none_relaxed(3);
        assert_eq!(b.relaxed_count(), 0);
        assert_eq!(b.join_group(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_singleton_panics() {
        let _ = QueryPlan::new(2, &[5]);
    }

    #[test]
    fn explain_mentions_groups() {
        let mut d = Dictionary::new();
        let ty = d.intern("type");
        let a = d.intern("a");
        let c = d.intern("c");
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, ty, a);
        b.pattern(s, ty, c);
        b.project(s);
        let q = b.build().unwrap();
        let _ = TermId(0);
        let plan = QueryPlan::new(2, &[1]);
        let text = plan.explain(&q, &d);
        assert!(text.contains("join group"));
        assert!(text.contains("singleton"));
        assert!(text.contains("<a>"));
        assert!(text.contains("<c>"));
    }
}
