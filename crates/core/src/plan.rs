//! Query plans: the join-group/singleton partition of §3.2.
//!
//! A plan for `Q = {q₁ … qₙ}` is a partition where one subset (the **join
//! group**) holds the patterns whose relaxations were pruned, and every
//! other subset is a **singleton** holding one pattern that keeps its
//! relaxations. The paper's example: plan `{{q₁,q₃},{q₂}}` processes q₂
//! through an incremental merge and joins q₁, q₃ directly.

use sparql::Query;
use specqp_common::{Dictionary, Score};

/// A speculative query plan: which patterns are processed *with* their
/// relaxations (singletons) and which are joined bare (join group).
///
/// Besides the partition itself, a PLANGEN-produced plan carries the
/// predictions it was derived from — the expected k-th score of the original
/// query ([`score_floor`](QueryPlan::score_floor)) and, per pattern, the
/// expected best score of the query with that pattern's top relaxation
/// substituted in ([`predicted_relaxed_best`](QueryPlan::predicted_relaxed_best)).
/// The speculation verifier replays PLANGEN's inequality against *observed*
/// scores to detect mis-speculation at runtime (see `crate::speculation`).
/// Hand-built plans ([`QueryPlan::new`] and friends) carry no predictions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryPlan {
    /// `relaxed[i]` ⇔ pattern `i` is a singleton (gets an incremental
    /// merge).
    relaxed: Vec<bool>,
    /// PLANGEN's `E_Q(k)`: the expected k-th best score of the original
    /// (unrelaxed) query. `None` when the original query is not expected to
    /// fill the top-k, or when the plan was built by hand.
    score_floor: Option<Score>,
    /// PLANGEN's `E_{Q'}(1)` per pattern: the expected best score of the
    /// query with pattern `i` replaced by its top-weighted relaxation.
    /// Empty for hand-built plans; `None` entries mean the pattern has no
    /// relaxations or the relaxed query is expected to be empty.
    predicted_relaxed_best: Vec<Option<Score>>,
}

impl QueryPlan {
    /// Plan with the given singleton pattern indices.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn new(n_patterns: usize, singleton_indices: &[usize]) -> Self {
        let mut relaxed = vec![false; n_patterns];
        for &i in singleton_indices {
            assert!(i < n_patterns, "pattern index {i} out of range");
            relaxed[i] = true;
        }
        QueryPlan {
            relaxed,
            score_floor: None,
            predicted_relaxed_best: Vec::new(),
        }
    }

    /// The TriniT plan: every pattern is a singleton (`{{q₁},{q₂},…}`,
    /// Fig. 2).
    pub fn all_relaxed(n_patterns: usize) -> Self {
        QueryPlan {
            relaxed: vec![true; n_patterns],
            score_floor: None,
            predicted_relaxed_best: Vec::new(),
        }
    }

    /// The no-relaxation plan: plain rank joins over the original patterns.
    pub fn none_relaxed(n_patterns: usize) -> Self {
        QueryPlan {
            relaxed: vec![false; n_patterns],
            score_floor: None,
            predicted_relaxed_best: Vec::new(),
        }
    }

    /// Attaches PLANGEN's predictions: the expected k-th score of the
    /// original query and the per-pattern expected best relaxed scores.
    ///
    /// # Panics
    /// Panics if `predicted_relaxed_best` is non-empty but not of the plan's
    /// length.
    pub fn with_predictions(
        mut self,
        score_floor: Option<Score>,
        predicted_relaxed_best: Vec<Option<Score>>,
    ) -> Self {
        assert!(
            predicted_relaxed_best.is_empty() || predicted_relaxed_best.len() == self.relaxed.len(),
            "predictions/plan arity mismatch"
        );
        self.score_floor = score_floor;
        self.predicted_relaxed_best = predicted_relaxed_best;
        self
    }

    /// PLANGEN's expected k-th score of the original query, if predicted.
    pub fn score_floor(&self) -> Option<Score> {
        self.score_floor
    }

    /// PLANGEN's expected best score of the query with pattern `i` swapped
    /// for its top relaxation. `None` for hand-built plans, out-of-range
    /// indices, patterns without relaxations, or empty relaxed estimates.
    pub fn predicted_relaxed_best(&self, i: usize) -> Option<Score> {
        self.predicted_relaxed_best.get(i).copied().flatten()
    }

    /// This plan with the patterns in `add` additionally relaxed — the
    /// fallback controller's escalation step. Predictions are preserved so
    /// re-verification after a fallback stage uses the same floor.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn escalated(&self, add: &[usize]) -> QueryPlan {
        let mut next = self.clone();
        for &i in add {
            assert!(i < next.relaxed.len(), "pattern index {i} out of range");
            next.relaxed[i] = true;
        }
        next
    }

    /// Number of patterns covered by the plan.
    pub fn len(&self) -> usize {
        self.relaxed.len()
    }

    /// `true` for the empty plan (no patterns).
    pub fn is_empty(&self) -> bool {
        self.relaxed.is_empty()
    }

    /// `true` if pattern `i` keeps its relaxations.
    pub fn is_relaxed(&self, i: usize) -> bool {
        self.relaxed[i]
    }

    /// Indices of the join group (non-relaxed patterns), ascending.
    pub fn join_group(&self) -> Vec<usize> {
        (0..self.relaxed.len())
            .filter(|&i| !self.relaxed[i])
            .collect()
    }

    /// Indices of the singletons (relaxed patterns), ascending.
    pub fn singletons(&self) -> Vec<usize> {
        (0..self.relaxed.len())
            .filter(|&i| self.relaxed[i])
            .collect()
    }

    /// Number of patterns whose relaxations are processed — the grouping
    /// key of Figures 7 and 9.
    pub fn relaxed_count(&self) -> usize {
        self.relaxed.iter().filter(|&&r| r).count()
    }

    /// `true` iff the partition covers each pattern exactly once (always
    /// true by construction; kept as an invariant check for property
    /// tests).
    pub fn is_valid_partition(&self) -> bool {
        let jg = self.join_group();
        let sg = self.singletons();
        jg.len() + sg.len() == self.relaxed.len() && jg.iter().all(|i| !sg.contains(i))
    }

    /// Human-readable plan description mirroring the paper's notation.
    pub fn explain(&self, query: &Query, dict: &Dictionary) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let jg = self.join_group();
        let _ = writeln!(s, "Spec-QP plan over {} patterns:", self.len());
        if jg.is_empty() {
            let _ = writeln!(s, "  join group: (empty — all patterns relaxed)");
        } else {
            let _ = writeln!(s, "  join group (rank joins over sorted lists):");
            for i in jg {
                let p = &query.patterns()[i];
                let _ = writeln!(s, "    q{}: {}", i + 1, render(p, query, dict));
            }
        }
        for i in self.singletons() {
            let p = &query.patterns()[i];
            let _ = writeln!(
                s,
                "  singleton (incremental merge): q{}: {}",
                i + 1,
                render(p, query, dict)
            );
        }
        s
    }
}

fn render(p: &sparql::TriplePattern, query: &Query, dict: &Dictionary) -> String {
    let term = |t: sparql::Term| match t {
        sparql::Term::Var(v) => format!("?{}", query.var_name(v)),
        sparql::Term::Const(id) => format!("<{}>", dict.name_or_unknown(id)),
    };
    format!("{} {} {}", term(p.s), term(p.p), term(p.o))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::QueryBuilder;
    use specqp_common::TermId;

    #[test]
    fn partition_accessors() {
        let p = QueryPlan::new(4, &[1, 3]);
        assert_eq!(p.join_group(), vec![0, 2]);
        assert_eq!(p.singletons(), vec![1, 3]);
        assert_eq!(p.relaxed_count(), 2);
        assert!(p.is_relaxed(1));
        assert!(!p.is_relaxed(0));
        assert!(p.is_valid_partition());
    }

    #[test]
    fn trinit_and_bare_plans() {
        let t = QueryPlan::all_relaxed(3);
        assert_eq!(t.relaxed_count(), 3);
        assert!(t.join_group().is_empty());
        let b = QueryPlan::none_relaxed(3);
        assert_eq!(b.relaxed_count(), 0);
        assert_eq!(b.join_group(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_singleton_panics() {
        let _ = QueryPlan::new(2, &[5]);
    }

    #[test]
    fn predictions_roundtrip_and_escalation_preserves_them() {
        let floor = Some(Score::new(1.25));
        let best = vec![Some(Score::new(0.9)), None, Some(Score::new(0.4))];
        let p = QueryPlan::new(3, &[1]).with_predictions(floor, best);
        assert_eq!(p.score_floor(), floor);
        assert_eq!(p.predicted_relaxed_best(0), Some(Score::new(0.9)));
        assert_eq!(p.predicted_relaxed_best(1), None);
        assert_eq!(p.predicted_relaxed_best(7), None, "out of range is None");

        let e = p.escalated(&[0]);
        assert!(e.is_relaxed(0) && e.is_relaxed(1) && !e.is_relaxed(2));
        assert_eq!(e.score_floor(), floor, "escalation keeps the floor");
        assert_eq!(e.predicted_relaxed_best(2), Some(Score::new(0.4)));
        // Escalation is idempotent on already-relaxed patterns.
        assert_eq!(e.escalated(&[0, 1]), e);
        // Hand-built plans differ from predicted ones under Eq.
        assert_ne!(p, QueryPlan::new(3, &[1]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn prediction_arity_mismatch_panics() {
        let _ = QueryPlan::new(2, &[]).with_predictions(None, vec![None]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn escalate_out_of_range_panics() {
        let _ = QueryPlan::new(2, &[]).escalated(&[2]);
    }

    #[test]
    fn explain_mentions_groups() {
        let mut d = Dictionary::new();
        let ty = d.intern("type");
        let a = d.intern("a");
        let c = d.intern("c");
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, ty, a);
        b.pattern(s, ty, c);
        b.project(s);
        let q = b.build().unwrap();
        let _ = TermId(0);
        let plan = QueryPlan::new(2, &[1]);
        let text = plan.explain(&q, &d);
        assert!(text.contains("join group"));
        assert!(text.contains("singleton"));
        assert!(text.contains("<a>"));
        assert!(text.contains("<c>"));
    }
}
