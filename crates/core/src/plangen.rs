//! PLANGEN — Algorithm 1 of the paper.
//!
//! For each triple pattern `qᵢ` of the query, compare
//!
//! * `E_Q(k)` — the expected k-th best score of the **original** query, with
//! * `E_{Q′}(1)` — the expected best score of the query with `qᵢ` replaced
//!   by its **top-weighted relaxation** `q′ᵢ`.
//!
//! If `E_{Q′}(1) > E_Q(k)`, some relaxed answer may enter the top-k, so
//! `qᵢ` becomes a singleton (its relaxations will be processed through an
//! incremental merge); otherwise all of `qᵢ`'s relaxations are pruned.
//! Only the *top-weighted* relaxation needs checking because normalization
//! (Def. 5) makes every relaxation's best possible score equal its weight.

use crate::plan::QueryPlan;
use kgstore::KnowledgeGraph;
use relax::RelaxationRegistry;
use sparql::{Query, TriplePattern};
use specqp_common::Score;
use specqp_stats::{CardinalityEstimator, QueryShapeKey, RefitMode, ScoreEstimator, StatsCatalog};

/// Runs PLANGEN and returns the speculative plan.
///
/// `E_Q(k) = None` (the original query cannot produce `k` answers — some
/// pattern is empty or the join is too selective) is treated as `−∞`: any
/// pattern whose top relaxation yields answers becomes a singleton, which is
/// the behaviour the paper describes for Twitter ("most of the queries
/// required all triple patterns to be relaxed … we were able to identify the
/// requirement of all the relaxations").
///
/// Three extensions over Algorithm 1 feed the speculation lifecycle:
///
/// * the plan carries PLANGEN's predictions — `E_Q(k)` as the
///   [`score floor`](QueryPlan::score_floor) and each pattern's `E_{Q'}(1)`
///   — so the runtime verifier can replay the pruning inequality against
///   observed scores;
/// * the catalog's speculation ledger is consulted: a pattern whose pruning
///   is a recorded [repeat offender](StatsCatalog::repeat_offender) keeps
///   its relaxations even when the (evidently miscalibrated) estimate says
///   pruning is safe;
/// * with `learned` on, the catalog's [learned
///   models](StatsCatalog::learned_kth) substitute for the histogram
///   estimates — but only where their confidence gate is open. A closed
///   gate (or an unknown query shape) falls back to the histogram value,
///   so a cold or low-confidence engine plans byte-identically to a
///   histogram-only one. Substituted values also replace the plan's carried
///   predictions, keeping the verifier's replayed inequality consistent
///   with the decision that was actually made.
pub fn plan_query<C: CardinalityEstimator + ?Sized>(
    graph: &KnowledgeGraph,
    query: &Query,
    k: usize,
    catalog: &StatsCatalog,
    cardinality: &C,
    registry: &RelaxationRegistry,
    refit: RefitMode,
    learned: bool,
) -> QueryPlan {
    assert!(k >= 1, "top-k requires k ≥ 1");
    let estimator = ScoreEstimator::with_mode(catalog, cardinality, refit);
    let patterns = query.patterns();

    let original: Vec<(TriplePattern, f64)> = patterns.iter().map(|p| (*p, 1.0)).collect();
    let eq_k = estimator
        .estimate(graph, &original)
        .expected_score_at_rank(k);
    // Learned substitution for E_Q(k): variable names are erased so the
    // model bucket covers every isomorphic query.
    let qshape =
        learned.then(|| QueryShapeKey::new(patterns.iter().map(|p| p.stats_key()).collect()));
    let eq_k = qshape
        .as_ref()
        .and_then(|s| catalog.learned_kth(s, k))
        .or(eq_k);

    let mut singletons: Vec<usize> = Vec::new();
    let mut predicted_best: Vec<Option<Score>> = vec![None; patterns.len()];
    for (i, q_i) in patterns.iter().enumerate() {
        let Some(top) = registry.top_relaxation_for(q_i) else {
            // No relaxations exist for this pattern — nothing to speculate.
            continue;
        };
        let mut relaxed = original.clone();
        relaxed[i] = (top.pattern, top.weight);
        let eq1_relaxed = estimator.estimate(graph, &relaxed).expected_top_score();
        // Learned substitution for E_{Q'}(1), keyed by (query shape,
        // relaxed pattern): observed best relaxation contributions replace
        // the convolution estimate once confidently fit.
        let eq1_relaxed = qshape
            .as_ref()
            .and_then(|s| catalog.learned_relaxed_best(s, &q_i.stats_key(), k))
            .or(eq1_relaxed);
        predicted_best[i] = eq1_relaxed.map(Score::new);
        let required = match (eq1_relaxed, eq_k) {
            (Some(best_relaxed), Some(kth_original)) => best_relaxed > kth_original,
            // Original can't fill the top-k but the relaxed query has
            // answers: relaxations are required.
            (Some(_), None) => true,
            // The relaxed query itself yields nothing: pruning is free.
            (None, _) => false,
        };
        // Feedback bias: the ledger outranks the estimate once a pattern's
        // pruning has repeatedly proven wrong at runtime.
        if required || catalog.repeat_offender(&q_i.stats_key()) {
            singletons.push(i);
        }
    }
    QueryPlan::new(patterns.len(), &singletons)
        .with_predictions(eq_k.map(Score::new), predicted_best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use relax::{Position, TermRule};
    use sparql::QueryBuilder;
    use specqp_stats::ExactCardinality;

    /// A KG engineered so that one pattern's relaxation obviously matters
    /// and another's obviously does not:
    ///
    /// * class `rich` has 100 members (scores power-law) — k answers exist
    ///   without any relaxation;
    /// * class `poor` has 2 members — top-k needs its relaxation `backup`
    ///   (50 members, weight 0.9);
    /// * class `rich`'s relaxation `tiny` is nearly empty and weighted 0.2.
    fn setup() -> (kgstore::KnowledgeGraph, RelaxationRegistry) {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..100 {
            b.add(&format!("e{i}"), "type", "rich", 1000.0 / (i + 1) as f64);
        }
        for i in 0..2 {
            b.add(&format!("e{i}"), "type", "poor", 100.0 / (i + 1) as f64);
        }
        for i in 0..50 {
            b.add(&format!("e{i}"), "type", "backup", 500.0 / (i + 1) as f64);
        }
        b.add("e0", "type", "tiny", 1.0);
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("poor").unwrap(),
            d.lookup("backup").unwrap(),
            0.9,
            ty,
        ));
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("rich").unwrap(),
            d.lookup("tiny").unwrap(),
            0.2,
            ty,
        ));
        (g, reg)
    }

    fn query(g: &kgstore::KnowledgeGraph, classes: &[&str]) -> Query {
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        for c in classes {
            b.pattern(s, ty, d.lookup(c).unwrap());
        }
        b.project(s);
        b.build().unwrap()
    }

    #[test]
    fn prunes_useless_relaxation_keeps_needed_one() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = query(&g, &["rich", "poor"]);
        let plan = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        // Join rich⋈poor has only 2 answers < k=10 ⇒ E_Q(k)=None ⇒ the
        // pattern with a viable relaxation (poor→backup) must be relaxed…
        assert!(plan.is_relaxed(1), "poor must keep its relaxations");
        // …while rich→tiny gives a relaxed query with ~1 answer of weight
        // 0.2; E_Q'(1) exists, and with E_Q(k)=None it is also marked
        // required (any answers help when the original can't fill k).
        assert!(plan.is_valid_partition());
    }

    #[test]
    fn no_relaxation_needed_when_original_fills_k() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        // Single-pattern query over `rich`: 100 answers ≫ k=10; relaxation
        // `tiny` has weight 0.2 — its best score (≈0.2) cannot beat the
        // expected 10th score of `rich` (≈ high, power law head).
        let q = query(&g, &["rich"]);
        let plan = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        assert_eq!(plan.relaxed_count(), 0, "{plan:?}");
    }

    #[test]
    fn relaxation_required_for_small_pattern() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        // Single-pattern query over `poor`: 2 answers < k=10 ⇒ backup needed.
        let q = query(&g, &["poor"]);
        let plan = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        assert_eq!(plan.singletons(), vec![0]);
    }

    #[test]
    fn pattern_without_rules_never_relaxed() {
        let (g, _) = setup();
        let empty_reg = RelaxationRegistry::new();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = query(&g, &["poor"]);
        let plan = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &empty_reg,
            RefitMode::TwoBucket,
            false,
        );
        assert_eq!(plan.relaxed_count(), 0);
    }

    #[test]
    fn small_k_prunes_more() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = query(&g, &["poor"]);
        // k=1: the original `poor` head scores 1.0 ≥ any relaxed (0.9·…).
        let plan1 = plan_query(
            &g,
            &q,
            1,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        let plan10 = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        assert!(plan1.relaxed_count() <= plan10.relaxed_count());
    }

    #[test]
    fn plan_carries_floor_and_predictions() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        // `rich` alone fills k=10, so the floor is a real estimate and the
        // pattern's relaxed-best prediction is populated (rich→tiny exists).
        let q = query(&g, &["rich"]);
        let plan = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        let floor = plan.score_floor().expect("rich fills the top-10");
        assert!(floor.value() > 0.0 && floor.value() <= 1.0, "{floor:?}");
        let best = plan.predicted_relaxed_best(0).expect("rich→tiny predicted");
        assert!(best.value() <= 0.2 + 1e-9, "weight caps the relaxed best");
        assert!(
            best < floor,
            "pruning was justified by best {best:?} ≤ floor {floor:?}"
        );
    }

    #[test]
    fn ledger_bias_forces_relaxation_of_repeat_offender() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = query(&g, &["rich"]);
        // Baseline: the estimate says rich→tiny can't reach the top-10.
        let plan = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        assert_eq!(plan.relaxed_count(), 0);
        // Record the pruning as a repeat offense; the bias must override the
        // unchanged estimate.
        let g0 = catalog.generation();
        assert!(catalog.record_speculation(q.patterns()[0].stats_key(), true));
        assert_eq!(catalog.generation(), g0 + 1);
        let biased = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        assert_eq!(biased.singletons(), vec![0], "offender must stay relaxed");
    }

    /// Teaches the catalog's learned models a value for one query shape by
    /// feeding identical observations until the confidence gate opens.
    fn teach(
        catalog: &StatsCatalog,
        q: &Query,
        k: usize,
        kth_score: Option<f64>,
        relaxed_best: Vec<(sparql::StatsKey, f64)>,
    ) {
        use specqp_stats::{FeatureVector, LearnedObservation};
        let shape = QueryShapeKey::new(q.patterns().iter().map(|p| p.stats_key()).collect());
        for _ in 0..4 {
            catalog.record_learned(LearnedObservation {
                shape: shape.clone(),
                features: FeatureVector::default(),
                k,
                kth_score,
                relaxed_best: relaxed_best.clone(),
            });
        }
    }

    #[test]
    fn cold_learned_mode_plans_identically_to_histograms() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        for classes in [&["rich"][..], &["poor"][..], &["rich", "poor"][..]] {
            let q = query(&g, classes);
            for k in [1, 10] {
                let hist = plan_query(
                    &g,
                    &q,
                    k,
                    &catalog,
                    &card,
                    &reg,
                    RefitMode::TwoBucket,
                    false,
                );
                let learned =
                    plan_query(&g, &q, k, &catalog, &card, &reg, RefitMode::TwoBucket, true);
                assert_eq!(
                    hist, learned,
                    "empty models must fall back to the histogram path"
                );
            }
        }
    }

    #[test]
    fn confident_learned_kth_overrides_the_histogram_floor() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = query(&g, &["rich"]);
        // Histogram baseline prunes rich→tiny (floor ≈ head of the power
        // law, far above weight 0.2).
        let base = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            true,
        );
        assert_eq!(base.relaxed_count(), 0);
        // Teach: the observed 10th score is actually tiny (0.05) — below
        // the relaxation's reachable 0.2. The learned floor must replace
        // the histogram floor and flip the decision.
        teach(&catalog, &q, 10, Some(0.05), vec![]);
        let learned = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            true,
        );
        assert_eq!(learned.singletons(), vec![0], "learned floor must win");
        let floor = learned.score_floor().expect("floor carried");
        assert!(
            (floor.value() - 0.05).abs() < 0.01,
            "plan must carry the substituted floor, got {floor:?}"
        );
        // Histogram mode is untouched by the models.
        let hist = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        assert_eq!(hist.relaxed_count(), 0);
    }

    #[test]
    fn confident_learned_relaxed_best_prunes_an_overestimated_relaxation() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        // poor alone: histogram says backup is required (2 answers < k=10).
        let q = query(&g, &["poor"]);
        let base = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            true,
        );
        assert_eq!(base.singletons(), vec![0]);
        // Teach: runs consistently observed the relaxation contributing
        // nothing (best contribution 0.0) while the original did fill the
        // top-10 at 0.3. Pruning becomes justified.
        let key = q.patterns()[0].stats_key();
        teach(&catalog, &q, 10, Some(0.3), vec![(key, 0.0)]);
        let learned = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            true,
        );
        assert_eq!(
            learned.relaxed_count(),
            0,
            "confidently-zero relaxed best must prune"
        );
        let best = learned.predicted_relaxed_best(0).expect("prediction kept");
        assert!(best.value() < 0.01, "substituted prediction, got {best:?}");
    }

    #[test]
    fn learned_substitution_respects_k_bucketing() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = query(&g, &["rich"]);
        // Teach only at k=10; planning at k=3 must not use the model (its
        // observed ln(1+k) range is a single point at k=10).
        teach(&catalog, &q, 10, Some(0.05), vec![]);
        let at10 = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            true,
        );
        assert_eq!(at10.singletons(), vec![0]);
        let at3 = plan_query(&g, &q, 3, &catalog, &card, &reg, RefitMode::TwoBucket, true);
        let hist3 = plan_query(
            &g,
            &q,
            3,
            &catalog,
            &card,
            &reg,
            RefitMode::TwoBucket,
            false,
        );
        assert_eq!(at3, hist3, "no extrapolation outside the taught k range");
    }

    #[test]
    fn multibucket_mode_runs() {
        let (g, reg) = setup();
        let catalog = StatsCatalog::new();
        let card = ExactCardinality::new();
        let q = query(&g, &["rich", "poor"]);
        let plan = plan_query(
            &g,
            &q,
            10,
            &catalog,
            &card,
            &reg,
            RefitMode::MultiBucket(64),
            false,
        );
        assert!(plan.is_valid_partition());
    }
}
