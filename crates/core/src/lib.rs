//! **Spec-QP** — speculative query planning for top-k joins over knowledge
//! graphs.
//!
//! This crate is the paper's primary contribution (§3): given a triple-
//! pattern query whose patterns carry weighted relaxations, predict — from
//! precomputed score-distribution statistics alone — *which patterns'
//! relaxations can contribute answers to the top-k*, and build a query plan
//! that processes only those through [Incremental
//! Merge](operators::IncrementalMerge) operators while the rest are joined
//! directly over their sorted match lists.
//!
//! # Pieces
//!
//! * [`QueryPlan`] — the partition `{join group} ∪ {singletons}` of §3.2,
//! * [`plan_query`] — Algorithm 1 (PLANGEN),
//! * [`PlanCache`] — a sharded, bounded cache from canonical
//!   [`QueryShape`]s to plans, so repeated workload shapes skip PLANGEN,
//! * [`executor`] — turns a plan into an operator tree and runs it; also
//!   provides the **TriniT baseline** (every pattern relaxed, Fig. 2) and a
//!   **naive materialize-everything executor** used as ground truth in
//!   tests,
//! * [`Engine`] — a one-stop façade owning the statistics catalog and
//!   cardinality oracle,
//! * [`speculation`] — the runtime speculation lifecycle: mis-speculation
//!   detection ([`speculation::verify`]), staged fallback re-execution and
//!   the statistics feedback loop, governed by [`SpeculationPolicy`]
//!   (`SPECQP_SPEC`),
//! * [`evaluation`] — the paper's quality metrics (§4.3): precision/recall,
//!   prediction accuracy, average score error,
//! * [`RunReport`] — timing + the "number of answer objects created" memory
//!   metric.
//!
//! # Quickstart
//!
//! ```
//! use kgstore::KnowledgeGraphBuilder;
//! use relax::{Position, RelaxationRegistry, TermRule};
//! use specqp::Engine;
//! use sparql::parse_query;
//!
//! // A tiny KG: singers and vocalists with popularity scores.
//! let mut b = KnowledgeGraphBuilder::new();
//! b.add("shakira", "rdf:type", "singer", 100.0);
//! b.add("adele", "rdf:type", "vocalist", 90.0);
//! b.add("shakira", "rdf:type", "lyricist", 40.0);
//! b.add("adele", "rdf:type", "lyricist", 35.0);
//! let kg = b.build();
//!
//! // One mined relaxation: singer → vocalist at weight 0.8.
//! let d = kg.dictionary();
//! let mut reg = RelaxationRegistry::new();
//! reg.add(TermRule::with_context(
//!     Position::Object,
//!     d.lookup("singer").unwrap(),
//!     d.lookup("vocalist").unwrap(),
//!     0.8,
//!     d.lookup("rdf:type").unwrap(),
//! ));
//!
//! let engine = Engine::new(&kg, &reg);
//! let q = parse_query(
//!     "SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <rdf:type> <lyricist> }",
//!     kg.dictionary(),
//! )
//! .unwrap();
//! let out = engine.run_specqp(&q, 2);
//! assert!(!out.answers.is_empty());
//! ```

pub mod engine;
pub mod evaluation;
pub mod executor;
pub mod parallel;
pub mod plan;
pub mod plan_cache;
pub mod plangen;
pub mod speculation;
pub mod trace;

pub use engine::{Engine, EngineConfig, PinnedGraph, QueryOutcome};
pub use evaluation::{
    precision_at_k, prediction_covering, prediction_exact, relaxation_contribution_best,
    required_relaxations, score_error, ScoreError,
};
pub use executor::{
    build_block_stream_morsels, build_block_stream_with_chains, build_plan_stream,
    build_plan_stream_with_chains, run_naive, run_plan, run_plan_blocks,
    run_plan_blocks_with_chains, run_plan_with_chains,
};
pub use parallel::{partition_target, run_plan_blocks_parallel};
pub use plan::QueryPlan;
pub use plan_cache::{PlanCache, QueryShape};
pub use plangen::plan_query;
pub use speculation::{SpeculationPolicy, Verdict};
pub use trace::RunReport;

// Re-exported so downstream crates (service, bench) can read the learned
// predictor's counters without depending on the stats crate directly.
pub use specqp_stats::LearnedCounters;
