//! The paper's quality metrics (§4.3): precision/recall, prediction
//! accuracy and average score error, plus the ground-truth computation of
//! which patterns *required* relaxation.

use kgstore::{KnowledgeGraph, PatternKey};
use operators::PartialAnswer;
use relax::RelaxationRegistry;
use sparql::{Query, Term, TriplePattern};
use specqp_common::{FxHashSet, TermId};

/// Precision of Spec-QP's top-k against the true (TriniT) top-k: the
/// fraction of Spec-QP's answers that appear in the true top-k.
///
/// The paper notes precision = recall because both share denominator `k`;
/// when the true result has fewer than `k` answers we use that smaller
/// denominator (there is no way to return answers that do not exist). An
/// empty truth met by an empty result is perfect precision (nothing existed
/// and nothing was claimed — the degenerate case fallback-escalated empty
/// queries hit); an empty truth met by invented answers stays 0.
pub fn precision_at_k(spec: &[PartialAnswer], trinit: &[PartialAnswer], k: usize) -> f64 {
    if trinit.is_empty() {
        return if spec.is_empty() { 1.0 } else { 0.0 };
    }
    let denom = k.min(trinit.len()).max(1);
    let truth: FxHashSet<_> = trinit.iter().take(k).map(|a| &a.binding).collect();
    let hits = spec
        .iter()
        .take(k)
        .filter(|a| truth.contains(&a.binding))
        .count();
    hits as f64 / denom as f64
}

/// Average absolute score deviation (Table 4): mean and population standard
/// deviation of `|score_spec(i) − score_trinit(i)|` over ranks `i = 1..k`,
/// plus the mean *percentage* deviation relative to the true scores.
/// Missing Spec-QP ranks count as score 0 (maximal deviation).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScoreError {
    /// Mean absolute deviation.
    pub mean_abs: f64,
    /// Population standard deviation of the absolute deviations.
    pub std_dev: f64,
    /// Mean of `|Δᵢ| / scoreᵀʳⁱⁿⁱᵀᵢ` in percent.
    pub mean_pct: f64,
}

/// Computes the per-rank score error between the two top-k lists.
pub fn score_error(spec: &[PartialAnswer], trinit: &[PartialAnswer], k: usize) -> ScoreError {
    let n = k.min(trinit.len());
    if n == 0 {
        return ScoreError::default();
    }
    let mut diffs = Vec::with_capacity(n);
    let mut pcts = Vec::new();
    for (i, truth) in trinit.iter().take(n).enumerate() {
        let t = truth.score.value();
        let s = spec.get(i).map(|a| a.score.value()).unwrap_or(0.0);
        let d = (s - t).abs();
        diffs.push(d);
        if t > 0.0 {
            pcts.push(d / t * 100.0);
        }
    }
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
    let mean_pct = if pcts.is_empty() {
        0.0
    } else {
        pcts.iter().sum::<f64>() / pcts.len() as f64
    };
    ScoreError {
        mean_abs: mean,
        std_dev: var.sqrt(),
        mean_pct,
    }
}

/// Instantiates `pattern` under `answer`'s binding; `None` if some variable
/// is unbound.
fn instantiate(
    pattern: &TriplePattern,
    answer: &PartialAnswer,
) -> Option<(TermId, TermId, TermId)> {
    let resolve = |t: Term| -> Option<TermId> {
        match t {
            Term::Const(id) => Some(id),
            Term::Var(v) => answer.binding.get(v),
        }
    };
    Some((
        resolve(pattern.s)?,
        resolve(pattern.p)?,
        resolve(pattern.o)?,
    ))
}

/// Best normalized weighted score the (pattern, relaxations) pair assigns to
/// `answer`, together with whether that best came from a relaxation.
fn provenance_for(
    graph: &KnowledgeGraph,
    pattern: &TriplePattern,
    registry: &RelaxationRegistry,
    answer: &PartialAnswer,
) -> Option<(f64, bool)> {
    let score_under = |p: &TriplePattern, weight: f64| -> Option<f64> {
        let (s, pr, o) = instantiate(p, answer)?;
        let raw = graph.score_of(s, pr, o)?.value();
        let (ks, kp, ko) = p.const_parts();
        let max = graph
            .matches(PatternKey {
                s: ks,
                p: kp,
                o: ko,
            })
            .max_score()
            .value();
        if max <= 0.0 {
            return None;
        }
        Some(weight * raw / max)
    };

    let mut best: Option<(f64, bool)> = score_under(pattern, 1.0).map(|s| (s, false));
    for r in registry.relaxations_for(pattern) {
        if let Some(s) = score_under(&r.pattern, r.weight) {
            match best {
                Some((b, _)) if b >= s => {}
                _ => best = Some((s, true)),
            }
        }
    }
    best
}

/// Ground truth for Table 3: the set of pattern indices whose **relaxations
/// contribute to the true top-k** — i.e. for some top-k answer, the best
/// provenance of that pattern's contribution is a relaxed pattern rather
/// than the original (either the original does not match the answer at all,
/// or a relaxation gives the same binding a strictly higher weighted score,
/// which is the max-semantics of Def. 8).
pub fn required_relaxations(
    graph: &KnowledgeGraph,
    query: &Query,
    registry: &RelaxationRegistry,
    true_topk: &[PartialAnswer],
) -> Vec<usize> {
    let mut required = Vec::new();
    for (i, pattern) in query.patterns().iter().enumerate() {
        let needed = true_topk.iter().any(|answer| {
            matches!(
                provenance_for(graph, pattern, registry, answer),
                Some((_, true))
            )
        });
        if needed {
            required.push(i);
        }
    }
    required
}

/// Per-pattern best relaxation contribution to `topk`: for each pattern
/// index, the highest total answer score among answers whose best provenance
/// for that pattern is a *relaxation* (0.0 when no answer relied on one).
/// This is the learned predictor's training signal for `E_{Q'}(1)` — what
/// the top relaxation actually delivered, in the same normalized-sum score
/// space PLANGEN's estimates live in.
pub fn relaxation_contribution_best(
    graph: &KnowledgeGraph,
    query: &Query,
    registry: &RelaxationRegistry,
    topk: &[PartialAnswer],
) -> Vec<f64> {
    query
        .patterns()
        .iter()
        .map(|pattern| {
            topk.iter()
                .filter(|answer| {
                    matches!(
                        provenance_for(graph, pattern, registry, answer),
                        Some((_, true))
                    )
                })
                .map(|answer| answer.score.value())
                .fold(0.0, f64::max)
        })
        .collect()
}

/// Prediction accuracy criterion of Table 3: the planner is *exactly right*
/// when its singleton set equals the ground-truth required set.
pub fn prediction_exact(plan: &crate::QueryPlan, required: &[usize]) -> bool {
    plan.singletons() == required
}

/// Lenient prediction criterion: the planner *covers* the ground truth when
/// every required pattern is relaxed (supersets allowed). Covering plans
/// preserve result quality and only forfeit part of the runtime win — the
/// diagnostic used in EXPERIMENTS.md to show our misses are conservative.
pub fn prediction_covering(plan: &crate::QueryPlan, required: &[usize]) -> bool {
    required.iter().all(|&i| plan.is_relaxed(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryPlan;
    use kgstore::KnowledgeGraphBuilder;
    use operators::Binding;
    use relax::{Position, TermRule};
    use sparql::{QueryBuilder, Var};
    use specqp_common::Score;

    fn ans(v: u32, score: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(vec![(Var(0), TermId(v))]),
            Score::new(score),
        )
    }

    #[test]
    fn precision_counts_overlap() {
        let spec = vec![ans(1, 0.9), ans(2, 0.8), ans(9, 0.7)];
        let truth = vec![ans(1, 0.9), ans(2, 0.85), ans(3, 0.8)];
        assert!((precision_at_k(&spec, &truth, 3) - 2.0 / 3.0).abs() < 1e-9);
        assert!((precision_at_k(&truth, &truth, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precision_with_short_truth_uses_truth_len() {
        let spec = vec![ans(1, 0.9)];
        let truth = vec![ans(1, 0.9)];
        assert!((precision_at_k(&spec, &truth, 10) - 1.0).abs() < 1e-9);
        // Empty truth: invented answers score 0, an empty result is perfect.
        assert_eq!(precision_at_k(&spec, &[], 10), 0.0);
        assert_eq!(precision_at_k(&[], &[], 10), 1.0);
    }

    #[test]
    fn score_error_basics() {
        let spec = vec![ans(1, 1.4), ans(2, 1.0)];
        let truth = vec![ans(1, 1.5), ans(2, 1.2)];
        let e = score_error(&spec, &truth, 2);
        assert!((e.mean_abs - 0.15).abs() < 1e-9);
        assert!((e.std_dev - 0.05).abs() < 1e-9);
        // pct = mean(0.1/1.5, 0.2/1.2)·100 ≈ (6.67% + 16.67%)/2
        assert!((e.mean_pct - (0.1 / 1.5 + 0.2 / 1.2) / 2.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn score_error_missing_ranks_penalized() {
        let spec = vec![ans(1, 1.0)];
        let truth = vec![ans(1, 1.0), ans(2, 0.8)];
        let e = score_error(&spec, &truth, 2);
        assert!((e.mean_abs - 0.4).abs() < 1e-9);
    }

    #[test]
    fn identical_lists_have_zero_error() {
        let truth = vec![ans(1, 1.0), ans(2, 0.8)];
        let e = score_error(&truth, &truth, 2);
        assert_eq!(e.mean_abs, 0.0);
        assert_eq!(e.std_dev, 0.0);
        assert_eq!(e.mean_pct, 0.0);
    }

    /// KG where e2 is only a vocalist (not singer): any top-k containing e2
    /// required the singer-pattern relaxation.
    fn provenance_setup() -> (KnowledgeGraph, RelaxationRegistry, Query) {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("e1", "type", "singer", 10.0);
        b.add("e2", "type", "vocalist", 9.0);
        b.add("e1", "type", "lyricist", 5.0);
        b.add("e2", "type", "lyricist", 4.0);
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("singer").unwrap(),
            d.lookup("vocalist").unwrap(),
            0.8,
            ty,
        ));
        let mut qb = QueryBuilder::new();
        let s = qb.var("s");
        qb.pattern(s, ty, d.lookup("singer").unwrap());
        qb.pattern(s, ty, d.lookup("lyricist").unwrap());
        qb.project(s);
        let q = qb.build().unwrap();
        (g, reg, q)
    }

    #[test]
    fn required_relaxations_from_provenance() {
        let (g, reg, q) = provenance_setup();
        let d = g.dictionary();
        let e1 = d.lookup("e1").unwrap();
        let e2 = d.lookup("e2").unwrap();
        // Top-2 with relaxation: e1 (2.0), e2 (0.8+0.8).
        let topk = vec![ans(e1.0, 2.0), ans(e2.0, 1.6)];
        let req = required_relaxations(&g, &q, &reg, &topk);
        assert_eq!(req, vec![0], "only the singer pattern needed relaxing");
        // Top-1 only: no relaxation needed.
        let req = required_relaxations(&g, &q, &reg, &topk[..1]);
        assert!(req.is_empty());
    }

    #[test]
    fn relaxation_contribution_tracks_best_relying_answer() {
        let (g, reg, q) = provenance_setup();
        let d = g.dictionary();
        let e1 = d.lookup("e1").unwrap();
        let e2 = d.lookup("e2").unwrap();
        let topk = vec![ans(e1.0, 2.0), ans(e2.0, 1.6)];
        let best = relaxation_contribution_best(&g, &q, &reg, &topk);
        // Pattern 0 (singer): e2's answer relied on the vocalist relaxation
        // — its total score 1.6 is the contribution. Pattern 1 (lyricist):
        // nothing relied on a relaxation.
        assert_eq!(best, vec![1.6, 0.0]);
        // Without e2, no answer relies on any relaxation.
        assert_eq!(
            relaxation_contribution_best(&g, &q, &reg, &topk[..1]),
            vec![0.0, 0.0]
        );
        assert_eq!(
            relaxation_contribution_best(&g, &q, &reg, &[]),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn prediction_exact_matches_sets() {
        let plan = QueryPlan::new(3, &[0, 2]);
        assert!(prediction_exact(&plan, &[0, 2]));
        assert!(!prediction_exact(&plan, &[0]));
        assert!(!prediction_exact(&plan, &[0, 1]));
        let none = QueryPlan::none_relaxed(3);
        assert!(prediction_exact(&none, &[]));
    }

    #[test]
    fn prediction_covering_allows_supersets() {
        let plan = QueryPlan::new(3, &[0, 2]);
        assert!(prediction_covering(&plan, &[0, 2]));
        assert!(prediction_covering(&plan, &[0]));
        assert!(prediction_covering(&plan, &[]));
        assert!(!prediction_covering(&plan, &[1]));
        assert!(!prediction_covering(&plan, &[0, 1]));
    }
}
