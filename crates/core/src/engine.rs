//! The engine façade: one object bundling graph, relaxations, statistics
//! and configuration, with `run_*` entry points for Spec-QP, TriniT and the
//! naive executor.

use crate::executor::{run_naive, run_plan_blocks_with_chains, run_plan_with_chains};
use crate::plan::QueryPlan;
use crate::plan_cache::{PlanCache, QueryShape};
use crate::plangen::plan_query;
use crate::speculation::{self, SpeculationPolicy, Verdict};
use crate::trace::RunReport;
use kgstore::{Epoch, KnowledgeGraph, LiveGraph};
use operators::{
    CacheMetricsHandle, ExecutionMode, MetricsHandle, OpMetrics, PartialAnswer, PullStrategy,
};
use relax::{ChainRuleSet, RelaxationRegistry};
use sparql::Query;
use specqp_stats::{
    CardinalityEstimator, ExactCardinality, FeatureVector, LearnedObservation, QueryShapeKey,
    RefitMode, StatsCatalog,
};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the engine holds a shared structure: borrowed from the caller
/// (the original lifetime-tied construction path) or co-owned through an
/// [`Arc`] (the serving path, where the engine must be `'static` so worker
/// threads can share it).
#[derive(Debug)]
enum Handle<'g, T> {
    Borrowed(&'g T),
    Shared(Arc<T>),
}

impl<T> Handle<'_, T> {
    #[inline]
    fn get(&self) -> &T {
        match self {
            Handle::Borrowed(r) => r,
            Handle::Shared(a) => a,
        }
    }
}

/// How the engine holds its graph. The first two mirror [`Handle`]; the
/// third is the live-write path: the engine holds a [`LiveGraph`] and every
/// public entry point *pins* the current version for the duration of that
/// call (see [`PinnedGraph`]), so one query sees one consistent epoch while
/// writers keep committing.
#[derive(Debug)]
enum GraphHandle<'g> {
    Borrowed(&'g KnowledgeGraph),
    Shared(Arc<KnowledgeGraph>),
    Live(Arc<LiveGraph>),
}

enum PinnedInner<'e> {
    /// An immutable graph: the pin is just a borrow, the epoch is fixed at
    /// [`Epoch::ZERO`] forever.
    Static(&'e KnowledgeGraph),
    /// A version published by a [`LiveGraph`]: the `Arc` keeps this exact
    /// version alive for as long as the pin is held, even if writers commit
    /// (or compaction folds the delta) concurrently.
    Versioned(Arc<KnowledgeGraph>, Epoch),
}

/// A graph version pinned for the duration of one engine call.
///
/// Dereferences to [`KnowledgeGraph`]. For engines over an immutable graph
/// this is a plain borrow at [`Epoch::ZERO`]; for engines over a
/// [`LiveGraph`] it co-owns the version that was current when the pin was
/// taken, so concurrent [`LiveGraph::commit`]s never change what an
/// in-flight query sees. Dropping the pin releases the version (compacted
/// versions are freed once the last pinned reader drops them).
pub struct PinnedGraph<'e> {
    inner: PinnedInner<'e>,
}

impl Deref for PinnedGraph<'_> {
    type Target = KnowledgeGraph;

    #[inline]
    fn deref(&self) -> &KnowledgeGraph {
        match &self.inner {
            PinnedInner::Static(g) => g,
            PinnedInner::Versioned(g, _) => g,
        }
    }
}

impl PinnedGraph<'_> {
    /// The epoch this pin observes ([`Epoch::ZERO`] for immutable graphs).
    pub fn epoch(&self) -> Epoch {
        match &self.inner {
            PinnedInner::Static(_) => Epoch::ZERO,
            PinnedInner::Versioned(_, e) => *e,
        }
    }
}

impl std::fmt::Debug for PinnedGraph<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedGraph")
            .field("epoch", &self.epoch())
            .field("triples", &self.len())
            .finish()
    }
}

/// Tunables of the engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Convolution-refit mode used by PLANGEN (paper default: two-bucket).
    pub refit: RefitMode,
    /// Rank-join pull strategy (default: adaptive / HRJN*).
    pub pull: PullStrategy,
    /// Row-at-a-time (reference) or vectorized block execution. Both paths
    /// return identical answers; the block path exists for speed. The
    /// default honours the `SPECQP_EXEC` environment variable
    /// (`row` | `block` | `block:N`, see [`ExecutionMode::from_env`]), which
    /// is how CI runs the whole test suite once per executor.
    pub execution: ExecutionMode,
    /// The speculation lifecycle policy: whether speculative runs are
    /// verified after draining and whether mis-speculations trigger staged
    /// fallback re-execution (see [`crate::speculation`]). The default
    /// honours the `SPECQP_SPEC` environment variable
    /// (`off` | `detect` | `fallback` | `fallback:N` | `force`, see
    /// [`SpeculationPolicy::from_env`]), which is how CI runs the whole test
    /// suite once with fallback recovery enabled.
    pub speculation: SpeculationPolicy,
    /// Worker threads for morsel-driven intra-query parallelism (block
    /// execution only; `1` = sequential). When a query has a safely
    /// partitionable scan (see [`crate::parallel::partition_target`]), its
    /// match list is split into morsels pulled by `parallelism` workers;
    /// answers are bit-identical to sequential execution. The default
    /// honours the `SPECQP_MORSELS` environment variable, which is how CI
    /// runs the whole test suite once under parallel execution.
    pub parallelism: usize,
    /// Learned speculation predictions: when `true`, every verified run
    /// feeds an observation (query shape, features, observed k-th score,
    /// per-relaxation best contributions) into the catalog's learned
    /// models, and PLANGEN substitutes confident learned estimates for the
    /// static histogram ones (see [`specqp_stats::LearnedModels`]). Low
    /// confidence falls back to the histogram path byte-identically. The
    /// default honours the `SPECQP_LEARNED` environment variable
    /// (`1` | `0`), which is how CI runs the whole test suite once with
    /// learning enabled.
    pub learned: bool,
}

/// Reads `SPECQP_MORSELS` (a positive worker count; unset means `1`).
/// Panics on garbage so a typo in CI configuration fails loudly instead of
/// silently testing the wrong executor.
fn parallelism_from_env() -> usize {
    match std::env::var("SPECQP_MORSELS") {
        Err(_) => 1,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("SPECQP_MORSELS={v:?} is not a valid worker count (expected >= 1)"),
        },
    }
}

/// Reads `SPECQP_LEARNED` (`1`/`0`; unset means off). Panics on garbage so
/// a typo in CI configuration fails loudly instead of silently testing the
/// wrong predictor.
fn learned_from_env() -> bool {
    match std::env::var("SPECQP_LEARNED") {
        Err(_) => false,
        Ok(v) => match v.trim() {
            "1" => true,
            "0" => false,
            _ => panic!("SPECQP_LEARNED={v:?} is not a valid switch (expected 1 or 0)"),
        },
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            refit: RefitMode::TwoBucket,
            pull: PullStrategy::Adaptive,
            execution: ExecutionMode::from_env(),
            speculation: SpeculationPolicy::from_env(),
            parallelism: parallelism_from_env(),
            learned: learned_from_env(),
        }
    }
}

impl EngineConfig {
    /// This configuration with `execution` replaced.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// This configuration with `speculation` replaced.
    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = speculation;
        self
    }

    /// This configuration with `parallelism` replaced (clamped to ≥ 1).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// This configuration with `learned` replaced.
    pub fn with_learned(mut self, learned: bool) -> Self {
        self.learned = learned;
        self
    }
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The top-k answers, best first.
    pub answers: Vec<PartialAnswer>,
    /// The plan that was executed (for TriniT: all patterns relaxed).
    pub plan: QueryPlan,
    /// Cost accounting.
    pub report: RunReport,
}

/// A ready-to-query Spec-QP engine over one graph + rule registry.
///
/// The engine owns the statistics catalog, the cardinality oracle and a
/// sharded [`PlanCache`], all filled lazily and cached — mirroring the
/// paper's precomputed metadata. Call [`Engine::warm`] to pay those costs
/// ahead of timing runs (the paper measures with a warm cache: "we conducted
/// 5 consecutive runs for each query and considered the average of the
/// last 3").
///
/// Three construction paths exist:
///
/// * **Borrowed** ([`Engine::new`] / [`Engine::with_config`]): the engine
///   borrows the graph and registry — zero overhead, lifetime-tied.
/// * **Shared** ([`Engine::shared`] / [`Engine::shared_with_config`]): the
///   engine co-owns them through [`Arc`]s and is `'static`, so it can be
///   wrapped in an `Arc` itself and shared across service worker threads.
/// * **Live** ([`Engine::live`] / [`Engine::live_with_config`]): the engine
///   holds a [`LiveGraph`] accepting concurrent writes. Every public entry
///   point pins the version current at call start ([`PinnedGraph`]) so one
///   query sees one consistent epoch end to end, and the first call that
///   observes a new epoch invalidates the statistics caches and bumps the
///   catalog generation — the plan cache drops plans estimated against the
///   old epoch on sight.
///
/// `Engine` is `Send + Sync` in all three cases.
pub struct Engine<'g> {
    graph: GraphHandle<'g>,
    registry: Handle<'g, RelaxationRegistry>,
    chains: ChainRuleSet,
    catalog: StatsCatalog,
    cardinality: Box<dyn CardinalityEstimator + 'g>,
    plan_cache: PlanCache,
    config: EngineConfig,
    /// Highest epoch any pin has observed — the edge detector that triggers
    /// the statistics/plan-cache invalidation exactly once per commit.
    last_epoch: AtomicU64,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately avoids `pin()`: Debug must not have the side effect
        // of observing (and invalidating for) a fresh epoch.
        let triples = match &self.graph {
            GraphHandle::Borrowed(g) => g.len(),
            GraphHandle::Shared(g) => g.len(),
            GraphHandle::Live(live) => live.pinned().0.len(),
        };
        f.debug_struct("Engine")
            .field("triples", &triples)
            .field("rules", &self.registry.get().len())
            .field("config", &self.config)
            .field("cached_plans", &self.plan_cache.len())
            .finish_non_exhaustive()
    }
}

impl<'g> Engine<'g> {
    /// Engine with the paper's defaults (exact cardinalities, two-bucket
    /// refit, adaptive rank joins).
    pub fn new(graph: &'g KnowledgeGraph, registry: &'g RelaxationRegistry) -> Self {
        Engine {
            graph: GraphHandle::Borrowed(graph),
            registry: Handle::Borrowed(registry),
            chains: ChainRuleSet::new(),
            catalog: StatsCatalog::new(),
            cardinality: Box::new(ExactCardinality::new()),
            plan_cache: PlanCache::default(),
            config: EngineConfig::default(),
            last_epoch: AtomicU64::new(0),
        }
    }

    /// Engine with explicit configuration.
    pub fn with_config(
        graph: &'g KnowledgeGraph,
        registry: &'g RelaxationRegistry,
        config: EngineConfig,
    ) -> Self {
        Engine {
            config,
            ..Engine::new(graph, registry)
        }
    }

    /// Owned construction path: the engine co-owns graph and registry, so it
    /// has no borrowed lifetime and can be moved into (or `Arc`-shared
    /// across) worker threads.
    pub fn shared(
        graph: Arc<KnowledgeGraph>,
        registry: Arc<RelaxationRegistry>,
    ) -> Engine<'static> {
        Engine {
            graph: GraphHandle::Shared(graph),
            registry: Handle::Shared(registry),
            chains: ChainRuleSet::new(),
            catalog: StatsCatalog::new(),
            cardinality: Box::new(ExactCardinality::new()),
            plan_cache: PlanCache::default(),
            config: EngineConfig::default(),
            last_epoch: AtomicU64::new(0),
        }
    }

    /// Owned construction path with explicit configuration.
    pub fn shared_with_config(
        graph: Arc<KnowledgeGraph>,
        registry: Arc<RelaxationRegistry>,
        config: EngineConfig,
    ) -> Engine<'static> {
        Engine {
            config,
            ..Engine::shared(graph, registry)
        }
    }

    /// Live construction path: the engine serves queries from a
    /// [`LiveGraph`] that accepts concurrent [`LiveGraph::commit`]s. Each
    /// `run_*` / [`Engine::plan`] call pins the version current when it
    /// starts and uses it end to end (plan, execute, verify), so answers are
    /// consistent under concurrent writes. The first call observing a new
    /// epoch invalidates the cached pattern statistics and cardinality
    /// memos and bumps the catalog generation, which makes the
    /// generation-checked plan cache re-plan every shape.
    pub fn live(live: Arc<LiveGraph>, registry: Arc<RelaxationRegistry>) -> Engine<'static> {
        let epoch = live.epoch();
        Engine {
            graph: GraphHandle::Live(live),
            registry: Handle::Shared(registry),
            chains: ChainRuleSet::new(),
            catalog: StatsCatalog::new(),
            cardinality: Box::new(ExactCardinality::new()),
            plan_cache: PlanCache::default(),
            config: EngineConfig::default(),
            last_epoch: AtomicU64::new(epoch.value()),
        }
    }

    /// Live construction path with explicit configuration.
    pub fn live_with_config(
        live: Arc<LiveGraph>,
        registry: Arc<RelaxationRegistry>,
        config: EngineConfig,
    ) -> Engine<'static> {
        Engine {
            config,
            ..Engine::live(live, registry)
        }
    }

    /// Replaces the cardinality estimator (ablation: independence
    /// assumption instead of the exact oracle).
    pub fn with_cardinality(mut self, est: Box<dyn CardinalityEstimator + 'g>) -> Self {
        self.cardinality = est;
        self
    }

    /// Enables chain relaxations (the paper's future-work extension): the
    /// executors will additionally merge, for every relaxed pattern, the
    /// answers of each applicable predicate chain. PLANGEN's speculation
    /// still considers term relaxations only.
    pub fn with_chain_rules(mut self, chains: ChainRuleSet) -> Self {
        self.chains = chains;
        self
    }

    /// The configured chain rules.
    pub fn chain_rules(&self) -> &ChainRuleSet {
        &self.chains
    }

    /// Pins and returns the graph version this call should read (see
    /// [`PinnedGraph`]). For borrowed/shared engines this is free; for live
    /// engines it snapshots the current version and, on the first pin after
    /// a commit, refreshes the statistics layer.
    pub fn graph(&self) -> PinnedGraph<'_> {
        self.pin()
    }

    /// The live graph, when this engine was built with [`Engine::live`] —
    /// the handle writers commit through.
    pub fn live_graph(&self) -> Option<&Arc<LiveGraph>> {
        match &self.graph {
            GraphHandle::Live(live) => Some(live),
            _ => None,
        }
    }

    fn pin(&self) -> PinnedGraph<'_> {
        match &self.graph {
            GraphHandle::Borrowed(g) => PinnedGraph {
                inner: PinnedInner::Static(g),
            },
            GraphHandle::Shared(g) => PinnedGraph {
                inner: PinnedInner::Static(g),
            },
            GraphHandle::Live(live) => {
                let (graph, epoch) = live.pinned();
                self.observe_epoch(epoch);
                PinnedGraph {
                    inner: PinnedInner::Versioned(graph, epoch),
                }
            }
        }
    }

    /// Edge-detects epoch advancement: exactly one pin per committed epoch
    /// wins the `fetch_max` race and pays for the invalidation — cached
    /// pattern statistics, cardinality memos, and (via the catalog
    /// generation bump) every cached plan estimated against the old
    /// version.
    fn observe_epoch(&self, epoch: Epoch) {
        let prev = self.last_epoch.fetch_max(epoch.value(), Ordering::AcqRel);
        if prev < epoch.value() {
            self.catalog.invalidate_stats();
            self.cardinality.invalidate();
        }
    }

    /// The rule registry.
    pub fn registry(&self) -> &RelaxationRegistry {
        self.registry.get()
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The sharded plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The statistics catalog, including the speculation feedback ledger
    /// and its generation counter.
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// Plan-cache counters (hits, misses, insertions, evictions).
    pub fn plan_cache_metrics(&self) -> &CacheMetricsHandle {
        self.plan_cache.metrics()
    }

    /// Precomputes statistics, cardinalities *and the plan* for `query` so
    /// subsequent timed runs measure execution, not planning — the paper's
    /// offline metadata pass. The generated plan lands in the plan cache, so
    /// a warm→run sequence records a cache hit and skips PLANGEN.
    pub fn warm(&self, query: &Query, k: usize) {
        let _ = self.plan(query, k);
    }

    /// Phase 1 of the lifecycle — returns the plan for `query` and the time
    /// it took: a plan-cache lookup first (generation-checked against the
    /// statistics feedback ledger, so plans older than the latest refit —
    /// or estimated against an older epoch — are re-planned), with PLANGEN
    /// run (and the result cached) on a miss.
    pub fn plan(&self, query: &Query, k: usize) -> (QueryPlan, Duration) {
        let graph = self.pin();
        self.plan_on(&graph, query, k)
    }

    fn plan_on(&self, graph: &KnowledgeGraph, query: &Query, k: usize) -> (QueryPlan, Duration) {
        let t0 = Instant::now();
        let shape = QueryShape::of(query, k);
        let generation = self.catalog.generation();
        if let Some(plan) = self.plan_cache.lookup(&shape, generation) {
            return (plan, t0.elapsed());
        }
        let plan = plan_query(
            graph,
            query,
            k,
            &self.catalog,
            self.cardinality.as_ref(),
            self.registry.get(),
            self.config.refit,
            self.config.learned,
        );
        self.plan_cache.insert(shape, plan.clone(), generation);
        (plan, t0.elapsed())
    }

    /// Spec-QP: speculative plan, then the execute → verify → recover
    /// lifecycle (§3.2 plus the runtime safety net of
    /// [`crate::speculation`]). The graph version is pinned once here, so
    /// planning, execution, verification and any fallback stages all read
    /// the same epoch even while writers commit.
    pub fn run_specqp(&self, query: &Query, k: usize) -> QueryOutcome {
        let graph = self.pin();
        let (plan, planning) = self.plan_on(&graph, query, k);
        self.run_speculative_on(&graph, query, k, plan, planning)
    }

    /// TriniT baseline: every pattern processed with its relaxations
    /// (§2.1); no planning step, and nothing to verify — the all-relaxed
    /// plan *is* the lifecycle's safety net.
    pub fn run_trinit(&self, query: &Query, k: usize) -> QueryOutcome {
        self.run_with_plan(
            query,
            k,
            QueryPlan::all_relaxed(query.len()),
            Duration::ZERO,
        )
    }

    /// Phase 2 of the lifecycle — drains `plan`'s top-`k` through the
    /// configured executor (row-at-a-time or block). Shared by every run
    /// path and every fallback stage, so both executors go through the
    /// identical lifecycle.
    fn execute_phase(
        &self,
        graph: &KnowledgeGraph,
        query: &Query,
        k: usize,
        plan: &QueryPlan,
        metrics: &MetricsHandle,
    ) -> Vec<PartialAnswer> {
        match self.config.execution {
            ExecutionMode::RowAtATime => run_plan_with_chains(
                graph,
                query,
                plan,
                self.registry.get(),
                &self.chains,
                metrics.clone(),
                self.config.pull,
                k,
            ),
            ExecutionMode::Block(size) => {
                if self.config.parallelism > 1 {
                    if let Some(target) = crate::parallel::partition_target(
                        graph,
                        query,
                        plan,
                        self.registry.get(),
                        &self.chains,
                    ) {
                        return crate::parallel::run_plan_blocks_parallel(
                            graph,
                            query,
                            plan,
                            self.registry.get(),
                            &self.chains,
                            metrics.clone(),
                            self.config.pull,
                            k,
                            size,
                            self.config.parallelism,
                            target,
                        );
                    }
                }
                run_plan_blocks_with_chains(
                    graph,
                    query,
                    plan,
                    self.registry.get(),
                    &self.chains,
                    metrics.clone(),
                    self.config.pull,
                    k,
                    size,
                )
            }
        }
    }

    /// Executes an explicit plan **verbatim** — no verification, no
    /// fallback, regardless of the configured speculation policy. This is
    /// the escape hatch ablations and tests use to observe exactly what one
    /// plan produces.
    pub fn run_with_plan(
        &self,
        query: &Query,
        k: usize,
        plan: QueryPlan,
        planning: Duration,
    ) -> QueryOutcome {
        let graph = self.pin();
        self.run_with_plan_on(&graph, query, k, plan, planning)
    }

    fn run_with_plan_on(
        &self,
        graph: &KnowledgeGraph,
        query: &Query,
        k: usize,
        plan: QueryPlan,
        planning: Duration,
    ) -> QueryOutcome {
        let metrics = OpMetrics::new_handle();
        let t0 = Instant::now();
        let answers = self.execute_phase(graph, query, k, &plan, &metrics);
        let execution = t0.elapsed();
        QueryOutcome {
            answers,
            plan,
            report: RunReport {
                planning,
                execution,
                verify: Duration::ZERO,
                answers_created: metrics.answers_created(),
                sorted_accesses: metrics.sorted_accesses(),
                random_accesses: metrics.random_accesses(),
                heap_pushes: metrics.heap_pushes(),
                fallback_stages: 0,
                wasted_answers: 0,
                mis_speculated: false,
            },
        }
    }

    /// Phases 2–4 of the lifecycle: executes `plan`, verifies the outcome
    /// and — policy permitting — recovers from mis-speculation through
    /// staged fallback re-execution (see [`crate::speculation`] for the
    /// policy semantics).
    ///
    /// * intermediate stages escalate the verifier's top suspect and
    ///   re-execute, reusing the engine's cached statistics, posting lists
    ///   and chain machinery;
    /// * the final permitted stage executes the literal all-relaxed
    ///   (TriniT) plan, so a recovered run's answers are byte-identical to
    ///   [`Engine::run_trinit`]'s operator tree output;
    /// * every verdict is recorded in the statistics feedback ledger
    ///   (escalated patterns as mis-speculations, surviving pruned patterns
    ///   as clean), biasing later PLANGEN runs and bumping the catalog
    ///   generation whenever a pattern's bias flips
    ///   ([`SpeculationPolicy::ForceFinal`] records nothing — a forced
    ///   verdict says nothing about the plan).
    ///
    /// The returned outcome carries the plan that produced the final
    /// answers, with verify time, fallback stages and wasted answer objects
    /// accounted in the report.
    pub fn run_speculative(
        &self,
        query: &Query,
        k: usize,
        plan: QueryPlan,
        planning: Duration,
    ) -> QueryOutcome {
        let graph = self.pin();
        self.run_speculative_on(&graph, query, k, plan, planning)
    }

    fn run_speculative_on(
        &self,
        graph: &KnowledgeGraph,
        query: &Query,
        k: usize,
        plan: QueryPlan,
        planning: Duration,
    ) -> QueryOutcome {
        let policy = self.config.speculation;
        if !policy.verifies() {
            return self.run_with_plan_on(graph, query, k, plan, planning);
        }
        let max_stages = match policy {
            SpeculationPolicy::Off => unreachable!("handled above"),
            SpeculationPolicy::Detect => 0,
            SpeculationPolicy::Fallback { max_stages } => max_stages.max(1),
            SpeculationPolicy::ForceFinal => 1,
        };

        let metrics = OpMetrics::new_handle();
        let mut current = plan;
        let mut execution = Duration::ZERO;
        let mut verify_time = Duration::ZERO;
        let mut created_before = 0u64;

        let t0 = Instant::now();
        let mut answers = self.execute_phase(graph, query, k, &current, &metrics);
        execution += t0.elapsed();

        let mut mis_speculated = false;
        // Ledger verdicts accumulated across the lifecycle and recorded in
        // batched catalog writes at the end: (pattern index, was a
        // *confirmed* mis-speculation). `passive` verdicts come for free
        // (clean runs) and only count against patterns already on file;
        // `probes` were paid for with a re-execution or provenance audit
        // and always count — a probe's clean result is what marks a shape
        // "settled" so it is never re-escalated.
        let mut passive: Vec<(usize, bool)> = Vec::new();
        let mut probes: Vec<(usize, bool)> = Vec::new();
        // A pattern the ledger holds as settled-clean (probed before, at
        // least as many clean verdicts as offenses) is never re-flagged:
        // a genuinely-small result would otherwise re-trigger the full
        // escalation ladder on every run — or, under Detect, oscillate the
        // offender bias and invalidate the plan cache every run.
        let settled = |i: usize| {
            self.catalog
                .speculation_outcome(&query.patterns()[i].stats_key())
                .settled_clean()
        };
        let mut stage = 0usize;
        loop {
            // Phase 3: verify. ForceFinal skips the verifier and forces the
            // safety net exactly once.
            let mut verdict = if policy == SpeculationPolicy::ForceFinal {
                if stage == 0 {
                    Verdict {
                        mis_speculated: true,
                        under_filled: false,
                        below_floor: false,
                        suspects: Vec::new(),
                        candidates: speculation::escalation_candidates(
                            query,
                            &current,
                            self.registry.get(),
                        ),
                    }
                } else {
                    Verdict::clean()
                }
            } else {
                let tv = Instant::now();
                let mut v = speculation::verify(query, &current, self.registry.get(), &answers, k);
                if v.mis_speculated {
                    v.suspects.retain(|&i| !settled(i));
                    v.mis_speculated = !v.suspects.is_empty();
                }
                verify_time += tv.elapsed();
                v
            };

            if !verdict.mis_speculated {
                if policy != SpeculationPolicy::ForceFinal {
                    // Clean terminal state: the pruned candidates that
                    // survived verification are recorded as clean prunes.
                    passive.extend(verdict.candidates.iter().map(|&i| (i, false)));
                    // Exoneration audit — the bias's way back: a *relaxed*
                    // pattern the ledger holds as a repeat offender is
                    // re-probated against reality. If its relaxations
                    // contributed nothing to the final top-k, clean verdicts
                    // accumulate until the bias flips off and PLANGEN prunes
                    // it again; if they did contribute, the offense is
                    // reinforced. Without this, one spurious offense would
                    // lock a shape onto relaxed plans forever (relaxed
                    // patterns are never escalation candidates, so they
                    // could never earn clean verdicts otherwise).
                    let audit: Vec<usize> = query
                        .patterns()
                        .iter()
                        .enumerate()
                        .filter(|(i, p)| {
                            current.is_relaxed(*i)
                                && self.registry.get().relaxation_count(p) > 0
                                && self.catalog.repeat_offender(&p.stats_key())
                        })
                        .map(|(i, _)| i)
                        .collect();
                    if !audit.is_empty() {
                        let contributing = crate::evaluation::required_relaxations(
                            graph,
                            query,
                            self.registry.get(),
                            &answers,
                        );
                        probes.extend(audit.into_iter().map(|i| (i, contributing.contains(&i))));
                    }
                }
                break;
            }
            mis_speculated = true;
            if stage >= max_stages {
                // Detect mode (or an exhausted stage budget): the flagged
                // suspects count as mis-speculation evidence — without a
                // re-execution there is nothing to confirm against. (The
                // settled filter above keeps a later exoneration from being
                // re-flagged, so this cannot oscillate the bias.)
                passive.extend(verdict.suspects.iter().map(|&i| (i, true)));
                break;
            }

            // Phase 4: recover — escalate and re-execute. The answers of
            // the abandoned execution are the wasted work.
            stage += 1;
            let (next, targets) = if stage == max_stages {
                // Safety net: the literal TriniT plan, byte-identical in
                // tree shape to `run_trinit`.
                let targets = std::mem::take(&mut verdict.candidates);
                (QueryPlan::all_relaxed(query.len()), targets)
            } else {
                let top = verdict.suspects[0];
                (current.escalated(&[top]), vec![top])
            };
            metrics.count_fallback_stage();
            let created = metrics.answers_created();
            metrics.count_wasted_answers(created - created_before);
            created_before = created;
            current = next;
            let t = Instant::now();
            let recovered = self.execute_phase(graph, query, k, &current, &metrics);
            execution += t.elapsed();
            // Confirm before teaching (ForceFinal skips the bookkeeping —
            // its verdicts are never recorded): an escalation that changed
            // nothing (e.g. a genuinely-small result that stays
            // under-filled even fully relaxed) proves the pruning was
            // *fine* — recording it as an offense would permanently lock
            // the shape onto TriniT-priced plans. Only answer-changing
            // escalations are confirmed mis-speculations, and when a
            // multi-pattern stage (the safety net) confirms, the offense is
            // attributed by answer provenance — only the escalated patterns
            // whose relaxations actually contribute to the recovered top-k
            // are blamed, the rest are exonerated as clean.
            if policy != SpeculationPolicy::ForceFinal {
                let confirmed = recovered != answers;
                if confirmed && targets.len() > 1 {
                    let contributing = crate::evaluation::required_relaxations(
                        graph,
                        query,
                        self.registry.get(),
                        &recovered,
                    );
                    probes.extend(targets.into_iter().map(|i| (i, contributing.contains(&i))));
                } else {
                    probes.extend(targets.into_iter().map(|i| (i, confirmed)));
                }
            }
            answers = recovered;
        }

        // Learned feedback: one observation per verified run — the query
        // shape, its histogram features, the observed k-th score, and what
        // each retained relaxation actually contributed to the final top-k.
        // ForceFinal records nothing (it is the ground-truth oracle the
        // learned path is judged against, and its all-relaxed run reflects
        // no planning decision).
        if self.config.learned && policy != SpeculationPolicy::ForceFinal {
            let tl = Instant::now();
            self.record_learned_observation(graph, query, k, &current, &answers);
            verify_time += tl.elapsed();
        }

        // Two batched ledger writes per run at most — service workers
        // contend on the catalog lock once per kind, not once per pattern.
        let key_of = |(i, mis): (usize, bool)| (query.patterns()[i].stats_key(), mis);
        if !probes.is_empty() {
            self.catalog.record_probes(probes.into_iter().map(key_of));
        }
        if !passive.is_empty() {
            self.catalog
                .record_speculations(passive.into_iter().map(key_of));
        }

        QueryOutcome {
            answers,
            plan: current,
            report: RunReport {
                planning,
                execution,
                verify: verify_time,
                answers_created: metrics.answers_created(),
                sorted_accesses: metrics.sorted_accesses(),
                random_accesses: metrics.random_accesses(),
                heap_pushes: metrics.heap_pushes(),
                fallback_stages: metrics.fallback_stages(),
                wasted_answers: metrics.wasted_answers(),
                mis_speculated,
            },
        }
    }

    /// Feeds one verified run back into the catalog's learned models: the
    /// variable-name-erased query shape, its histogram feature vector, the
    /// observed k-th score (`None` while under-filled — the model must not
    /// learn a floor from a run that had none), and the best top-k
    /// contribution of each retained relaxation (0.0 when it was carried
    /// but never used — exactly the evidence that justifies pruning it
    /// next time). Revisions detected inside [`StatsCatalog::record_learned`]
    /// bump the catalog generation, so cached plans built on the superseded
    /// predictions are re-planned.
    fn record_learned_observation(
        &self,
        graph: &KnowledgeGraph,
        query: &Query,
        k: usize,
        plan: &QueryPlan,
        answers: &[PartialAnswer],
    ) {
        let patterns = query.patterns();
        let registry = self.registry.get();
        let stats: Vec<_> = patterns
            .iter()
            .map(|p| self.catalog.stats(graph, p))
            .collect();
        let fanout: usize = patterns.iter().map(|p| registry.relaxation_count(p)).sum();
        let features = FeatureVector::from_stats(&stats, k, fanout);
        let kth_score = (answers.len() >= k).then(|| answers[k - 1].score.value());
        let relaxed: Vec<usize> = (0..patterns.len())
            .filter(|&i| plan.is_relaxed(i) && registry.relaxation_count(&patterns[i]) > 0)
            .collect();
        let relaxed_best = if relaxed.is_empty() {
            Vec::new()
        } else {
            let contributions =
                crate::evaluation::relaxation_contribution_best(graph, query, registry, answers);
            relaxed
                .into_iter()
                .map(|i| (patterns[i].stats_key(), contributions[i]))
                .collect()
        };
        self.catalog.record_learned(LearnedObservation {
            shape: QueryShapeKey::new(patterns.iter().map(|p| p.stats_key()).collect()),
            features,
            k,
            kth_score,
            relaxed_best,
        });
    }

    /// Brute-force ground truth (tests / validation only).
    pub fn run_naive(&self, query: &Query, k: usize) -> QueryOutcome {
        let graph = self.pin();
        let t0 = Instant::now();
        let answers = run_naive(&graph, query, self.registry.get(), k);
        let execution = t0.elapsed();
        QueryOutcome {
            answers,
            plan: QueryPlan::all_relaxed(query.len()),
            report: RunReport {
                execution,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use relax::{Position, TermRule};
    use sparql::parse_query;

    fn setup() -> (KnowledgeGraph, RelaxationRegistry) {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..50 {
            b.add(&format!("e{i}"), "type", "big", 100.0 / (i + 1) as f64);
        }
        for i in 0..3 {
            b.add(&format!("e{i}"), "type", "small", 10.0 / (i + 1) as f64);
        }
        for i in 0..30 {
            b.add(&format!("e{i}"), "type", "backup", 60.0 / (i + 1) as f64);
        }
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("small").unwrap(),
            d.lookup("backup").unwrap(),
            0.9,
            ty,
        ));
        (g, reg)
    }

    #[test]
    fn specqp_and_trinit_agree_on_top_answers_here() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let spec = engine.run_specqp(&q, 10);
        let trinit = engine.run_trinit(&q, 10);
        assert_eq!(trinit.plan.relaxed_count(), 2);
        // Both must return sorted answers; TriniT is the full ground truth.
        assert!(!trinit.answers.is_empty());
        assert!(spec.answers.len() <= trinit.answers.len());
        // The top TriniT answer must be found by Spec-QP whenever Spec-QP
        // relaxed the pattern that produced it — here the small pattern has
        // only 3 originals, so the planner must have relaxed it.
        assert!(spec.plan.is_relaxed(1), "{:?}", spec.plan);
        assert_eq!(spec.answers[0].binding, trinit.answers[0].binding);
    }

    #[test]
    fn trinit_has_no_planning_time() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let out = engine.run_trinit(&q, 5);
        assert_eq!(out.report.planning, Duration::ZERO);
        assert!(out.report.execution > Duration::ZERO);
        assert!(out.report.answers_created > 0);
    }

    #[test]
    fn warm_then_plan_is_fast_and_deterministic() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        engine.warm(&q, 10);
        let (p1, _) = engine.plan(&q, 10);
        let (p2, t2) = engine.plan(&q, 10);
        assert_eq!(p1, p2);
        // Warm planning is sub-millisecond on this toy graph.
        assert!(t2 < Duration::from_millis(50), "{t2:?}");
    }

    /// Compile-time proof that the engine can be shared across threads —
    /// both construction paths, including the `'static` owned one the
    /// service wraps in an `Arc`.
    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine<'static>>();
        assert_send_sync::<Engine<'_>>();
        assert_send_sync::<std::sync::Arc<Engine<'static>>>();
    }

    #[test]
    fn shared_engine_matches_borrowed() {
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let expect = {
            let borrowed = Engine::new(&g, &reg);
            borrowed.run_specqp(&q, 10)
        };
        let shared = Engine::shared(Arc::new(g), Arc::new(reg));
        let got = shared.run_specqp(&q, 10);
        assert_eq!(expect.plan, got.plan);
        assert_eq!(expect.answers.len(), got.answers.len());
        for (a, b) in expect.answers.iter().zip(&got.answers) {
            assert_eq!(a.binding, b.binding);
            assert!(a.score.approx_eq(b.score, 1e-12));
        }
    }

    /// Regression (the `Engine::warm` fix): warming used to discard its
    /// plan; it must pre-populate the plan cache so the next run of the same
    /// query shape records a hit and skips PLANGEN.
    #[test]
    fn warm_prepopulates_plan_cache() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let m = engine.plan_cache_metrics().clone();
        assert_eq!(m.lookups(), 0);
        engine.warm(&q, 10);
        assert_eq!(m.misses(), 1, "warm planning is the one miss");
        assert_eq!(m.insertions(), 1, "warm must insert the plan");
        let out = engine.run_specqp(&q, 10);
        assert_eq!(m.hits(), 1, "warm→run must be a cache hit");
        assert_eq!(m.lookups(), 2);
        assert!(!out.plan.is_empty());
        // A different shape (same query, different k) misses again.
        let _ = engine.plan(&q, 3);
        assert_eq!(m.misses(), 2);
    }

    /// The `EngineConfig::execution` knob: a block-mode engine answers
    /// exactly like the row-mode reference (scores included), for both
    /// Spec-QP and TriniT.
    #[test]
    fn block_engine_matches_row_engine() {
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let row_cfg = EngineConfig::default().with_execution(ExecutionMode::RowAtATime);
        let row = Engine::with_config(&g, &reg, row_cfg);
        for size in [1, 64, 4096] {
            let block_cfg = EngineConfig::default().with_execution(ExecutionMode::Block(size));
            let block = Engine::with_config(&g, &reg, block_cfg);
            for (a, b) in [
                (row.run_specqp(&q, 10), block.run_specqp(&q, 10)),
                (row.run_trinit(&q, 10), block.run_trinit(&q, 10)),
            ] {
                assert_eq!(a.plan, b.plan, "size {size}");
                assert_eq!(a.answers, b.answers, "size {size}");
            }
        }
    }

    /// The engine pinned to a specific speculation policy (row/block comes
    /// from the environment as usual).
    fn engine_with_policy<'g>(
        g: &'g KnowledgeGraph,
        reg: &'g RelaxationRegistry,
        policy: SpeculationPolicy,
    ) -> Engine<'g> {
        Engine::with_config(g, reg, EngineConfig::default().with_speculation(policy))
    }

    /// Fallback recovery: a deliberately wrong plan (relaxations pruned even
    /// though the original patterns cannot fill the top-k) is detected as
    /// under-filled and escalated until the result matches TriniT.
    #[test]
    fn fallback_recovers_underfilled_speculation() {
        let (g, reg) = setup();
        let engine = engine_with_policy(&g, &reg, SpeculationPolicy::Fallback { max_stages: 3 });
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        // Verbatim bad plan: only 3 of 10 requested answers exist unrelaxed.
        let bad = QueryPlan::none_relaxed(2);
        let verbatim = engine.run_with_plan(&q, 10, bad.clone(), Duration::ZERO);
        assert_eq!(verbatim.answers.len(), 3, "the mis-speculation is real");
        assert!(
            !verbatim.report.mis_speculated,
            "verbatim path never verifies"
        );

        let recovered = engine.run_speculative(&q, 10, bad, Duration::ZERO);
        let trinit = engine.run_trinit(&q, 10);
        assert!(recovered.report.mis_speculated);
        assert!(recovered.report.fallback_stages >= 1);
        assert!(
            recovered.report.wasted_answers > 0,
            "abandoned work measured"
        );
        assert!(recovered.report.verify > Duration::ZERO);
        assert_eq!(recovered.answers, trinit.answers, "recovery reaches TriniT");
        assert!(recovered.plan.is_relaxed(1), "the offender was escalated");
    }

    /// Detect classifies without re-executing: the answers stay as the
    /// speculative plan produced them, but the verdict lands in the report
    /// and the feedback ledger.
    #[test]
    fn detect_flags_without_recovery_and_feeds_the_ledger() {
        let (g, reg) = setup();
        let engine = engine_with_policy(&g, &reg, SpeculationPolicy::Detect);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let bad = QueryPlan::none_relaxed(2);
        let out = engine.run_speculative(&q, 10, bad, Duration::ZERO);
        assert!(out.report.mis_speculated);
        assert_eq!(out.report.fallback_stages, 0, "detect never re-executes");
        assert_eq!(out.answers.len(), 3, "answers returned as-is");
        // The flagged pattern (small, index 1 — the only one with
        // relaxations) is now a recorded offender.
        let key = q.patterns()[1].stats_key();
        assert!(engine.catalog().speculation_outcome(&key).mis_speculations >= 1);
        assert!(
            engine.catalog().generation() >= 1,
            "bias flip bumped the generation"
        );
    }

    /// ForceFinal takes exactly one stage to the all-relaxed safety net and
    /// returns answers byte-identical to `run_trinit` — and records nothing
    /// in the ledger.
    #[test]
    fn force_final_is_byte_identical_to_trinit() {
        let (g, reg) = setup();
        let engine = engine_with_policy(&g, &reg, SpeculationPolicy::ForceFinal);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let forced = engine.run_specqp(&q, 10);
        let trinit = engine.run_trinit(&q, 10);
        assert_eq!(forced.answers, trinit.answers, "bit-exact scores and order");
        assert_eq!(forced.plan, QueryPlan::all_relaxed(2));
        assert_eq!(forced.report.fallback_stages, 1);
        assert_eq!(
            engine.catalog().generation(),
            0,
            "diagnostic mode never teaches"
        );
    }

    /// End-to-end staleness: a feedback refit that bumps the catalog
    /// generation forces the next run of a cached shape to re-plan instead
    /// of serving the stale plan.
    #[test]
    fn feedback_refit_invalidates_cached_plan() {
        let (g, reg) = setup();
        let engine = engine_with_policy(&g, &reg, SpeculationPolicy::Off);
        // `small` carries the small→backup relaxation, so the offender bias
        // has something to act on.
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        engine.warm(&q, 1);
        let m = engine.plan_cache_metrics().clone();
        assert_eq!(m.misses(), 1);
        let (_, _) = engine.plan(&q, 1);
        assert_eq!(m.hits(), 1, "warm plan served before the refit");

        // A refit lands: the pattern's pruning is recorded as a repeat
        // offense, flipping its bias and bumping the generation.
        assert!(engine
            .catalog()
            .record_speculation(q.patterns()[0].stats_key(), true));

        let (p2, _) = engine.plan(&q, 1);
        assert_eq!(m.hits(), 1, "stale plan must not be served");
        assert_eq!(m.misses(), 2, "the shape was re-planned");
        assert_eq!(m.stale(), 1, "the stale entry was dropped on sight");
        assert!(p2.is_relaxed(0), "the re-plan honours the new bias");
        // The refreshed plan serves again at the new generation.
        let (_, _) = engine.plan(&q, 1);
        assert_eq!(m.hits(), 2);
    }

    /// An escalation that changes nothing must be recorded as a *clean*
    /// prune, not an offense: a genuinely-small result stays identical even
    /// fully relaxed, and teaching the ledger otherwise would permanently
    /// lock the shape onto all-relaxed plans.
    #[test]
    fn unconfirmed_escalation_records_clean_not_offender() {
        let mut b = KnowledgeGraphBuilder::new();
        // Two entities in `rare`; its relaxation target `ghost` is empty, so
        // escalating rare→ghost can never add answers.
        b.add("e0", "type", "rare", 10.0);
        b.add("e1", "type", "rare", 5.0);
        b.add("x", "type", "other", 1.0);
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("rare").unwrap(),
            d.lookup("other").unwrap(),
            0.9,
            ty,
        ));
        let engine = engine_with_policy(&g, &reg, SpeculationPolicy::Fallback { max_stages: 3 });
        let q = parse_query("SELECT ?s WHERE { ?s <type> <rare> }", g.dictionary()).unwrap();
        // k=10 with only 2 original answers: under-filled fires. The
        // escalation adds `other`'s entity `x`, so the first stage IS
        // confirmed … use a bare plan against an empty relaxation instead:
        let bad = QueryPlan::none_relaxed(1);
        let out = engine.run_speculative(&q, 10, bad, Duration::ZERO);
        // The escalated run found `x` via the relaxation (answers changed),
        // so this one is a confirmed offense — sanity-check the detector.
        assert!(out.report.mis_speculated);

        // Now the true unconfirmed case: a fresh engine and a query whose
        // relaxed space adds nothing (relaxation weight scores below the
        // originals and target list empty for the join).
        let mut b2 = KnowledgeGraphBuilder::new();
        b2.add("e0", "type", "rare", 10.0);
        b2.add("e1", "type", "rare", 5.0);
        b2.add("zz", "type", "ghost", 1.0);
        let g2 = b2.build();
        let d2 = g2.dictionary();
        let ty2 = d2.lookup("type").unwrap();
        let mut reg2 = RelaxationRegistry::new();
        // rare relaxes to a class with no members beyond `zz`… which IS a
        // member. Instead relax `ghost` (never queried) so the queried
        // pattern has a relaxation whose match list adds no *new* bindings:
        // rare → rare would be filtered; use rare → empty class name.
        let empty = d2.lookup("zz").unwrap(); // an entity id never used as a class
        reg2.add(TermRule::with_context(
            Position::Object,
            d2.lookup("rare").unwrap(),
            empty,
            0.9,
            ty2,
        ));
        let engine2 = engine_with_policy(&g2, &reg2, SpeculationPolicy::Fallback { max_stages: 3 });
        let q2 = parse_query("SELECT ?s WHERE { ?s <type> <rare> }", g2.dictionary()).unwrap();
        let bad2 = QueryPlan::none_relaxed(1);
        let out2 = engine2.run_speculative(&q2, 10, bad2, Duration::ZERO);
        assert!(out2.report.mis_speculated, "under-filled is still detected");
        assert!(out2.report.fallback_stages >= 1, "escalation was attempted");
        assert_eq!(out2.answers.len(), 2, "nothing new was recoverable");
        let key = q2.patterns()[0].stats_key();
        let outcome = engine2.catalog().speculation_outcome(&key);
        assert_eq!(
            outcome.mis_speculations, 0,
            "unconfirmed escalation must not count as an offense"
        );
        assert!(
            outcome.clean_prunes >= 1,
            "the paid-for probe marks the pattern settled"
        );
        assert!(
            !engine2.catalog().repeat_offender(&key),
            "the shape is not locked onto all-relaxed plans"
        );
        // The shape is settled: the next identical run must not re-trigger
        // the escalation ladder (the genuinely-small result would otherwise
        // pay the fallback cost on every request forever).
        let again = engine2.run_speculative(&q2, 10, QueryPlan::none_relaxed(1), Duration::ZERO);
        assert_eq!(
            again.report.fallback_stages, 0,
            "settled shapes are not re-escalated"
        );
        assert!(
            !again.report.mis_speculated,
            "known-benign under-fill is clean"
        );
        assert_eq!(again.answers.len(), 2);
    }

    /// Detect-mode regression: an unfixable under-filled shape must not
    /// oscillate the offender bias (flag → relax → exonerate → re-flag …),
    /// which would bump the catalog generation — and thereby invalidate the
    /// whole plan cache — on every single run.
    #[test]
    fn detect_does_not_oscillate_on_unfixable_underfill() {
        let (g, reg) = setup();
        let engine = engine_with_policy(&g, &reg, SpeculationPolicy::Detect);
        // big ⋈ small has 3 true answers < k=10 even fully relaxed only
        // grows to backup∩big; run the same query many times.
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        for _ in 0..6 {
            let _ = engine.run_specqp(&q, 40);
        }
        let generation = engine.catalog().generation();
        // One flag → one exoneration is the worst permissible transient
        // (plus, under SPECQP_LEARNED=1, one bump when the learned gate
        // first opens); after that the shape must be settled and the
        // generation stable — identical repeated observations never count
        // as revisions.
        assert!(generation <= 3, "generation oscillated: {generation}");
        let before = generation;
        let _ = engine.run_specqp(&q, 40);
        let _ = engine.run_specqp(&q, 40);
        assert_eq!(
            engine.catalog().generation(),
            before,
            "steady state must not keep invalidating the plan cache"
        );
    }

    /// The learned feedback loop end to end: verified runs record
    /// observations, the confidence gate opening bumps the generation
    /// (dropping cached plans built on the histogram estimates), and the
    /// learned engine's answers never drift from the histogram engine's.
    #[test]
    fn learned_engine_records_and_converges() {
        let (g, reg) = setup();
        let learned = Engine::with_config(
            &g,
            &reg,
            EngineConfig::default()
                .with_speculation(SpeculationPolicy::Fallback { max_stages: 3 })
                .with_learned(true),
        );
        let hist = Engine::with_config(
            &g,
            &reg,
            EngineConfig::default()
                .with_speculation(SpeculationPolicy::Fallback { max_stages: 3 })
                .with_learned(false),
        );
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        for run in 0..6 {
            let a = learned.run_specqp(&q, 10);
            let b = hist.run_specqp(&q, 10);
            assert_eq!(a.answers, b.answers, "drift on run {run}");
        }
        let counters = learned.catalog().learned_counters();
        assert_eq!(counters.observations, 6, "one observation per run");
        assert_eq!(
            hist.catalog().learned_counters().observations,
            0,
            "learning off records nothing"
        );
        // Steady state: the generation settled (the gate opened at most
        // once per model) and stays put under further identical runs.
        let before = learned.catalog().generation();
        let _ = learned.run_specqp(&q, 10);
        let _ = learned.run_specqp(&q, 10);
        assert_eq!(
            learned.catalog().generation(),
            before,
            "identical observations must not keep revising"
        );
    }

    /// ForceFinal is the ground-truth oracle: it must feed nothing into the
    /// learned models (its all-relaxed run reflects no planning decision).
    #[test]
    fn force_final_records_no_learned_observations() {
        let (g, reg) = setup();
        let engine = Engine::with_config(
            &g,
            &reg,
            EngineConfig::default()
                .with_speculation(SpeculationPolicy::ForceFinal)
                .with_learned(true),
        );
        let q = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let _ = engine.run_specqp(&q, 10);
        assert_eq!(engine.catalog().learned_counters().observations, 0);
        assert_eq!(engine.catalog().generation(), 0);
    }

    /// A learned revision invalidates the plan cache through the generation
    /// stamp: the run after the gate opens must re-plan, not serve the plan
    /// built on the histogram estimates.
    #[test]
    fn learned_revision_drops_cached_plan() {
        let (g, reg) = setup();
        let engine = Engine::with_config(
            &g,
            &reg,
            EngineConfig::default()
                .with_speculation(SpeculationPolicy::Fallback { max_stages: 3 })
                .with_learned(true),
        );
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let m = engine.plan_cache_metrics().clone();
        let mut last_gen = engine.catalog().generation();
        let mut bumped_and_replanned = false;
        for _ in 0..6 {
            let misses_before = m.misses();
            let _ = engine.run_specqp(&q, 10);
            let generation = engine.catalog().generation();
            if generation > last_gen {
                // The *next* run sees the stale stamp and must miss.
                let misses_now = m.misses();
                let _ = engine.run_specqp(&q, 10);
                assert!(
                    m.misses() > misses_now,
                    "revision at generation {generation} must drop the cached plan"
                );
                bumped_and_replanned = true;
                break;
            }
            let _ = misses_before;
            last_gen = generation;
        }
        assert!(
            bumped_and_replanned,
            "the confidence gate never opened in 6 runs"
        );
    }

    /// A clean speculative run under Fallback records clean prunes and adds
    /// no fallback overhead beyond the verify pass.
    #[test]
    fn clean_run_records_clean_prunes() {
        let (g, reg) = setup();
        let engine = engine_with_policy(&g, &reg, SpeculationPolicy::Fallback { max_stages: 3 });
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        // `big` has no relaxations, so there are no candidates: clean, no
        // ledger writes.
        let out = engine.run_specqp(&q, 5);
        assert!(!out.report.mis_speculated);
        assert_eq!(out.report.fallback_stages, 0);
        assert_eq!(out.report.wasted_answers, 0);

        // A query whose plan prunes a relaxation-bearing pattern cleanly:
        // k=1 is satisfied by the original `small` head (score 1.0 beats any
        // 0.9-weighted relaxed answer), so pruning verifies clean. Clean
        // verdicts for never-flagged patterns are deliberately unrecorded
        // (hot-path no-op); once the pattern has an offense on file, clean
        // runs accumulate against it.
        let q2 = parse_query("SELECT ?s WHERE { ?s <type> <small> }", g.dictionary()).unwrap();
        let out2 = engine.run_specqp(&q2, 1);
        let key = q2.patterns()[0].stats_key();
        if !out2.plan.is_relaxed(0) {
            assert!(!out2.report.mis_speculated, "{:?}", out2.report);
            assert_eq!(
                engine.catalog().speculation_outcome(&key),
                specqp_stats::SpeculationOutcome::default(),
                "clean verdicts for never-flagged patterns are no-ops"
            );
            // Put an offense on file without flipping the bias (1 mis vs 1
            // pre-recorded clean), then verify clean runs now accumulate.
            engine.catalog().record_speculation(key, true);
            engine.catalog().record_speculation(key, false);
            let _ = engine.run_specqp(&q2, 1);
            assert!(
                engine.catalog().speculation_outcome(&key).clean_prunes >= 2,
                "clean runs count once the pattern is on file"
            );
        }
    }

    /// The live path end to end: a pin taken before a commit keeps reading
    /// the old version (epoch isolation), while the first engine call after
    /// the commit observes the new epoch — statistics invalidated, catalog
    /// generation bumped, the cached plan dropped as stale, and the freshly
    /// written triple served on top.
    #[test]
    fn live_engine_pins_versions_and_invalidates_on_commit() {
        use kgstore::{LiveGraph, PatternKey, WriteBatch};

        let (g, reg) = setup();
        let live = Arc::new(LiveGraph::new(g));
        let engine = Engine::live(Arc::clone(&live), Arc::new(reg));
        // `big` has no relaxations, so answer sets are exact.
        let (q, ty, big) = {
            let graph = engine.graph();
            let d = graph.dictionary();
            (
                parse_query("SELECT ?s WHERE { ?s <type> <big> }", d).unwrap(),
                d.lookup("type").unwrap(),
                d.lookup("big").unwrap(),
            )
        };
        let before = engine.run_specqp(&q, 10);
        let m = engine.plan_cache_metrics().clone();
        let gen0 = engine.catalog().generation();

        // Pin the pre-commit version, then commit a higher-scored entity.
        let pinned = engine.graph();
        let seen_before = pinned.matches(PatternKey::po(ty, big)).len();
        let mut batch = WriteBatch::new();
        batch.assert("brand-new", "type", "big", 500.0);
        let epoch = live.commit(&batch);
        assert_eq!(epoch.value(), 1);

        // Epoch isolation: the held pin still reads the old version.
        assert_eq!(pinned.epoch(), kgstore::Epoch::ZERO);
        assert_eq!(pinned.matches(PatternKey::po(ty, big)).len(), seen_before);

        // A fresh call observes the commit: generation bumped, the stale
        // plan dropped on sight, and the new triple ranks first.
        let after = engine.run_specqp(&q, 10);
        assert!(engine.catalog().generation() > gen0, "stats invalidated");
        assert_eq!(m.stale(), 1, "old-epoch plan dropped on sight");
        let graph = engine.graph();
        assert_eq!(graph.epoch(), epoch);
        let new_id = graph.dictionary().lookup("brand-new").unwrap();
        let binds_new = |a: &PartialAnswer| a.binding.iter().any(|(_, t)| t == new_id);
        assert!(binds_new(&after.answers[0]), "new triple ranks first");
        assert!(!before.answers.iter().any(binds_new));

        // Steady state: no further commits, no further invalidations.
        let gen1 = engine.catalog().generation();
        let _ = engine.run_specqp(&q, 10);
        assert_eq!(engine.catalog().generation(), gen1);
    }

    #[test]
    fn naive_matches_trinit() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let naive = engine.run_naive(&q, 10);
        let trinit = engine.run_trinit(&q, 10);
        assert_eq!(naive.answers.len(), trinit.answers.len());
        for (a, b) in naive.answers.iter().zip(&trinit.answers) {
            assert_eq!(a.binding, b.binding);
            assert!(a.score.approx_eq(b.score, 1e-9));
        }
    }
}
