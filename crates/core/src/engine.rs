//! The engine façade: one object bundling graph, relaxations, statistics
//! and configuration, with `run_*` entry points for Spec-QP, TriniT and the
//! naive executor.

use crate::executor::{run_naive, run_plan_blocks_with_chains, run_plan_with_chains};
use crate::plan::QueryPlan;
use crate::plan_cache::{PlanCache, QueryShape};
use crate::plangen::plan_query;
use crate::trace::RunReport;
use kgstore::KnowledgeGraph;
use operators::{CacheMetricsHandle, ExecutionMode, OpMetrics, PartialAnswer, PullStrategy};
use relax::{ChainRuleSet, RelaxationRegistry};
use sparql::Query;
use specqp_stats::{CardinalityEstimator, ExactCardinality, RefitMode, StatsCatalog};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the engine holds a shared structure: borrowed from the caller
/// (the original lifetime-tied construction path) or co-owned through an
/// [`Arc`] (the serving path, where the engine must be `'static` so worker
/// threads can share it).
#[derive(Debug)]
enum Handle<'g, T> {
    Borrowed(&'g T),
    Shared(Arc<T>),
}

impl<T> Handle<'_, T> {
    #[inline]
    fn get(&self) -> &T {
        match self {
            Handle::Borrowed(r) => r,
            Handle::Shared(a) => a,
        }
    }
}

/// Tunables of the engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Convolution-refit mode used by PLANGEN (paper default: two-bucket).
    pub refit: RefitMode,
    /// Rank-join pull strategy (default: adaptive / HRJN*).
    pub pull: PullStrategy,
    /// Row-at-a-time (reference) or vectorized block execution. Both paths
    /// return identical answers; the block path exists for speed. The
    /// default honours the `SPECQP_EXEC` environment variable
    /// (`row` | `block` | `block:N`, see [`ExecutionMode::from_env`]), which
    /// is how CI runs the whole test suite once per executor.
    pub execution: ExecutionMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            refit: RefitMode::TwoBucket,
            pull: PullStrategy::Adaptive,
            execution: ExecutionMode::from_env(),
        }
    }
}

impl EngineConfig {
    /// This configuration with `execution` replaced.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The top-k answers, best first.
    pub answers: Vec<PartialAnswer>,
    /// The plan that was executed (for TriniT: all patterns relaxed).
    pub plan: QueryPlan,
    /// Cost accounting.
    pub report: RunReport,
}

/// A ready-to-query Spec-QP engine over one graph + rule registry.
///
/// The engine owns the statistics catalog, the cardinality oracle and a
/// sharded [`PlanCache`], all filled lazily and cached — mirroring the
/// paper's precomputed metadata. Call [`Engine::warm`] to pay those costs
/// ahead of timing runs (the paper measures with a warm cache: "we conducted
/// 5 consecutive runs for each query and considered the average of the
/// last 3").
///
/// Two construction paths exist:
///
/// * **Borrowed** ([`Engine::new`] / [`Engine::with_config`]): the engine
///   borrows the graph and registry — zero overhead, lifetime-tied.
/// * **Shared** ([`Engine::shared`] / [`Engine::shared_with_config`]): the
///   engine co-owns them through [`Arc`]s and is `'static`, so it can be
///   wrapped in an `Arc` itself and shared across service worker threads.
///   `Engine` is `Send + Sync` either way.
pub struct Engine<'g> {
    graph: Handle<'g, KnowledgeGraph>,
    registry: Handle<'g, RelaxationRegistry>,
    chains: ChainRuleSet,
    catalog: StatsCatalog,
    cardinality: Box<dyn CardinalityEstimator + 'g>,
    plan_cache: PlanCache,
    config: EngineConfig,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("triples", &self.graph.get().len())
            .field("rules", &self.registry.get().len())
            .field("config", &self.config)
            .field("cached_plans", &self.plan_cache.len())
            .finish_non_exhaustive()
    }
}

impl<'g> Engine<'g> {
    /// Engine with the paper's defaults (exact cardinalities, two-bucket
    /// refit, adaptive rank joins).
    pub fn new(graph: &'g KnowledgeGraph, registry: &'g RelaxationRegistry) -> Self {
        Engine {
            graph: Handle::Borrowed(graph),
            registry: Handle::Borrowed(registry),
            chains: ChainRuleSet::new(),
            catalog: StatsCatalog::new(),
            cardinality: Box::new(ExactCardinality::new()),
            plan_cache: PlanCache::default(),
            config: EngineConfig::default(),
        }
    }

    /// Engine with explicit configuration.
    pub fn with_config(
        graph: &'g KnowledgeGraph,
        registry: &'g RelaxationRegistry,
        config: EngineConfig,
    ) -> Self {
        Engine {
            config,
            ..Engine::new(graph, registry)
        }
    }

    /// Owned construction path: the engine co-owns graph and registry, so it
    /// has no borrowed lifetime and can be moved into (or `Arc`-shared
    /// across) worker threads.
    pub fn shared(
        graph: Arc<KnowledgeGraph>,
        registry: Arc<RelaxationRegistry>,
    ) -> Engine<'static> {
        Engine {
            graph: Handle::Shared(graph),
            registry: Handle::Shared(registry),
            chains: ChainRuleSet::new(),
            catalog: StatsCatalog::new(),
            cardinality: Box::new(ExactCardinality::new()),
            plan_cache: PlanCache::default(),
            config: EngineConfig::default(),
        }
    }

    /// Owned construction path with explicit configuration.
    pub fn shared_with_config(
        graph: Arc<KnowledgeGraph>,
        registry: Arc<RelaxationRegistry>,
        config: EngineConfig,
    ) -> Engine<'static> {
        Engine {
            config,
            ..Engine::shared(graph, registry)
        }
    }

    /// Replaces the cardinality estimator (ablation: independence
    /// assumption instead of the exact oracle).
    pub fn with_cardinality(mut self, est: Box<dyn CardinalityEstimator + 'g>) -> Self {
        self.cardinality = est;
        self
    }

    /// Enables chain relaxations (the paper's future-work extension): the
    /// executors will additionally merge, for every relaxed pattern, the
    /// answers of each applicable predicate chain. PLANGEN's speculation
    /// still considers term relaxations only.
    pub fn with_chain_rules(mut self, chains: ChainRuleSet) -> Self {
        self.chains = chains;
        self
    }

    /// The configured chain rules.
    pub fn chain_rules(&self) -> &ChainRuleSet {
        &self.chains
    }

    /// The underlying graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        self.graph.get()
    }

    /// The rule registry.
    pub fn registry(&self) -> &RelaxationRegistry {
        self.registry.get()
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The sharded plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Plan-cache counters (hits, misses, insertions, evictions).
    pub fn plan_cache_metrics(&self) -> &CacheMetricsHandle {
        self.plan_cache.metrics()
    }

    /// Precomputes statistics, cardinalities *and the plan* for `query` so
    /// subsequent timed runs measure execution, not planning — the paper's
    /// offline metadata pass. The generated plan lands in the plan cache, so
    /// a warm→run sequence records a cache hit and skips PLANGEN.
    pub fn warm(&self, query: &Query, k: usize) {
        let _ = self.plan(query, k);
    }

    /// Returns the plan for `query` and the time it took: a plan-cache
    /// lookup first, with PLANGEN run (and the result cached) on a miss.
    pub fn plan(&self, query: &Query, k: usize) -> (QueryPlan, Duration) {
        let t0 = Instant::now();
        let shape = QueryShape::of(query, k);
        if let Some(plan) = self.plan_cache.lookup(&shape) {
            return (plan, t0.elapsed());
        }
        let plan = plan_query(
            self.graph.get(),
            query,
            k,
            &self.catalog,
            self.cardinality.as_ref(),
            self.registry.get(),
            self.config.refit,
        );
        self.plan_cache.insert(shape, plan.clone());
        (plan, t0.elapsed())
    }

    /// Spec-QP: speculative plan, then execution (§3.2).
    pub fn run_specqp(&self, query: &Query, k: usize) -> QueryOutcome {
        let (plan, planning) = self.plan(query, k);
        self.run_with_plan(query, k, plan, planning)
    }

    /// TriniT baseline: every pattern processed with its relaxations
    /// (§2.1); no planning step.
    pub fn run_trinit(&self, query: &Query, k: usize) -> QueryOutcome {
        self.run_with_plan(
            query,
            k,
            QueryPlan::all_relaxed(query.len()),
            Duration::ZERO,
        )
    }

    /// Executes an explicit plan (used by ablations and tests).
    pub fn run_with_plan(
        &self,
        query: &Query,
        k: usize,
        plan: QueryPlan,
        planning: Duration,
    ) -> QueryOutcome {
        let metrics = OpMetrics::new_handle();
        let t0 = Instant::now();
        let answers = match self.config.execution {
            ExecutionMode::RowAtATime => run_plan_with_chains(
                self.graph.get(),
                query,
                &plan,
                self.registry.get(),
                &self.chains,
                metrics.clone(),
                self.config.pull,
                k,
            ),
            ExecutionMode::Block(size) => run_plan_blocks_with_chains(
                self.graph.get(),
                query,
                &plan,
                self.registry.get(),
                &self.chains,
                metrics.clone(),
                self.config.pull,
                k,
                size,
            ),
        };
        let execution = t0.elapsed();
        QueryOutcome {
            answers,
            plan,
            report: RunReport {
                planning,
                execution,
                answers_created: metrics.answers_created(),
                sorted_accesses: metrics.sorted_accesses(),
                random_accesses: metrics.random_accesses(),
                heap_pushes: metrics.heap_pushes(),
            },
        }
    }

    /// Brute-force ground truth (tests / validation only).
    pub fn run_naive(&self, query: &Query, k: usize) -> QueryOutcome {
        let t0 = Instant::now();
        let answers = run_naive(self.graph.get(), query, self.registry.get(), k);
        let execution = t0.elapsed();
        QueryOutcome {
            answers,
            plan: QueryPlan::all_relaxed(query.len()),
            report: RunReport {
                execution,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use relax::{Position, TermRule};
    use sparql::parse_query;

    fn setup() -> (KnowledgeGraph, RelaxationRegistry) {
        let mut b = KnowledgeGraphBuilder::new();
        for i in 0..50 {
            b.add(&format!("e{i}"), "type", "big", 100.0 / (i + 1) as f64);
        }
        for i in 0..3 {
            b.add(&format!("e{i}"), "type", "small", 10.0 / (i + 1) as f64);
        }
        for i in 0..30 {
            b.add(&format!("e{i}"), "type", "backup", 60.0 / (i + 1) as f64);
        }
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("small").unwrap(),
            d.lookup("backup").unwrap(),
            0.9,
            ty,
        ));
        (g, reg)
    }

    #[test]
    fn specqp_and_trinit_agree_on_top_answers_here() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let spec = engine.run_specqp(&q, 10);
        let trinit = engine.run_trinit(&q, 10);
        assert_eq!(trinit.plan.relaxed_count(), 2);
        // Both must return sorted answers; TriniT is the full ground truth.
        assert!(!trinit.answers.is_empty());
        assert!(spec.answers.len() <= trinit.answers.len());
        // The top TriniT answer must be found by Spec-QP whenever Spec-QP
        // relaxed the pattern that produced it — here the small pattern has
        // only 3 originals, so the planner must have relaxed it.
        assert!(spec.plan.is_relaxed(1), "{:?}", spec.plan);
        assert_eq!(spec.answers[0].binding, trinit.answers[0].binding);
    }

    #[test]
    fn trinit_has_no_planning_time() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query("SELECT ?s WHERE { ?s <type> <big> }", g.dictionary()).unwrap();
        let out = engine.run_trinit(&q, 5);
        assert_eq!(out.report.planning, Duration::ZERO);
        assert!(out.report.execution > Duration::ZERO);
        assert!(out.report.answers_created > 0);
    }

    #[test]
    fn warm_then_plan_is_fast_and_deterministic() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        engine.warm(&q, 10);
        let (p1, _) = engine.plan(&q, 10);
        let (p2, t2) = engine.plan(&q, 10);
        assert_eq!(p1, p2);
        // Warm planning is sub-millisecond on this toy graph.
        assert!(t2 < Duration::from_millis(50), "{t2:?}");
    }

    /// Compile-time proof that the engine can be shared across threads —
    /// both construction paths, including the `'static` owned one the
    /// service wraps in an `Arc`.
    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine<'static>>();
        assert_send_sync::<Engine<'_>>();
        assert_send_sync::<std::sync::Arc<Engine<'static>>>();
    }

    #[test]
    fn shared_engine_matches_borrowed() {
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let expect = {
            let borrowed = Engine::new(&g, &reg);
            borrowed.run_specqp(&q, 10)
        };
        let shared = Engine::shared(Arc::new(g), Arc::new(reg));
        let got = shared.run_specqp(&q, 10);
        assert_eq!(expect.plan, got.plan);
        assert_eq!(expect.answers.len(), got.answers.len());
        for (a, b) in expect.answers.iter().zip(&got.answers) {
            assert_eq!(a.binding, b.binding);
            assert!(a.score.approx_eq(b.score, 1e-12));
        }
    }

    /// Regression (the `Engine::warm` fix): warming used to discard its
    /// plan; it must pre-populate the plan cache so the next run of the same
    /// query shape records a hit and skips PLANGEN.
    #[test]
    fn warm_prepopulates_plan_cache() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let m = engine.plan_cache_metrics().clone();
        assert_eq!(m.lookups(), 0);
        engine.warm(&q, 10);
        assert_eq!(m.misses(), 1, "warm planning is the one miss");
        assert_eq!(m.insertions(), 1, "warm must insert the plan");
        let out = engine.run_specqp(&q, 10);
        assert_eq!(m.hits(), 1, "warm→run must be a cache hit");
        assert_eq!(m.lookups(), 2);
        assert!(!out.plan.is_empty());
        // A different shape (same query, different k) misses again.
        let _ = engine.plan(&q, 3);
        assert_eq!(m.misses(), 2);
    }

    /// The `EngineConfig::execution` knob: a block-mode engine answers
    /// exactly like the row-mode reference (scores included), for both
    /// Spec-QP and TriniT.
    #[test]
    fn block_engine_matches_row_engine() {
        let (g, reg) = setup();
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let row_cfg = EngineConfig::default().with_execution(ExecutionMode::RowAtATime);
        let row = Engine::with_config(&g, &reg, row_cfg);
        for size in [1, 64, 4096] {
            let block_cfg = EngineConfig::default().with_execution(ExecutionMode::Block(size));
            let block = Engine::with_config(&g, &reg, block_cfg);
            for (a, b) in [
                (row.run_specqp(&q, 10), block.run_specqp(&q, 10)),
                (row.run_trinit(&q, 10), block.run_trinit(&q, 10)),
            ] {
                assert_eq!(a.plan, b.plan, "size {size}");
                assert_eq!(a.answers, b.answers, "size {size}");
            }
        }
    }

    #[test]
    fn naive_matches_trinit() {
        let (g, reg) = setup();
        let engine = Engine::new(&g, &reg);
        let q = parse_query(
            "SELECT ?s WHERE { ?s <type> <big> . ?s <type> <small> }",
            g.dictionary(),
        )
        .unwrap();
        let naive = engine.run_naive(&q, 10);
        let trinit = engine.run_trinit(&q, 10);
        assert_eq!(naive.answers.len(), trinit.answers.len());
        for (a, b) in naive.answers.iter().zip(&trinit.answers) {
            assert_eq!(a.binding, b.binding);
            assert!(a.score.approx_eq(b.score, 1e-9));
        }
    }
}
