//! The speculation lifecycle: mis-speculation detection and staged fallback.
//!
//! PLANGEN's bet is that pruned relaxations cannot reach the top-k. This
//! module closes the loop on that bet at runtime:
//!
//! ```text
//!           ┌────────┐    ┌─────────┐    ┌────────┐ clean ┌─────────┐
//!  query ──▶│  plan  │───▶│ execute │───▶│ verify │──────▶│ answers │
//!           └────────┘    └─────────┘    └────────┘       └─────────┘
//!                ▲             ▲              │ mis-speculated
//!                │             │              ▼
//!                │             │        ┌──────────┐
//!                │             └────────│ escalate │  stage 1‥N−1: relax the
//!                │                      └──────────┘  top suspect; stage N:
//!                │                            │        all-relaxed safety net
//!                │        feedback ledger     ▼
//!                └───── (StatsCatalog, generation bump) ◀── verdicts
//! ```
//!
//! * **Detect** ([`verify`]): after the speculative plan drains, the verdict
//!   replays PLANGEN's pruning inequality against *observed* scores — the
//!   run is mis-speculated when the top-k is under-filled
//!   (`answers.len() < k`) while pruned patterns still hold unprocessed
//!   relaxations, or when the observed k-th score falls below some pruned
//!   pattern's predicted relaxed-best score (with the carried
//!   [score floor](crate::QueryPlan::score_floor) reported as a shortfall
//!   diagnostic when reality misses the `E_Q(k)` prediction itself).
//! * **Recover**: the engine escalates suspects one stage at a time
//!   ([`QueryPlan::escalated`]) and re-executes, with a final all-relaxed
//!   (TriniT) stage as the safety net. Every stage and every discarded
//!   answer object is counted (`RunReport::fallback_stages`,
//!   `RunReport::wasted_answers`), so the price of a wrong guess is
//!   measured, not hidden.
//! * **Learn**: verdicts feed the per-pattern-shape ledger in
//!   [`specqp_stats::StatsCatalog`], which biases later PLANGEN runs away
//!   from repeat offenders and bumps the catalog generation so stale cached
//!   plans are re-planned.
//!
//! The policy is selected per engine through
//! [`EngineConfig::speculation`](crate::EngineConfig::speculation), whose
//! default honours the `SPECQP_SPEC` environment variable.

use crate::plan::QueryPlan;
use operators::PartialAnswer;
use relax::RelaxationRegistry;
use sparql::Query;
use specqp_common::Score;

/// Default number of fallback re-executions allowed per query under
/// [`SpeculationPolicy::Fallback`] (`SPECQP_SPEC=fallback`).
pub const DEFAULT_MAX_STAGES: usize = 3;

/// Safety factor applied to the predicted score floor before the verdict's
/// [`below_floor`](Verdict::below_floor) diagnostic reports a shortfall: the
/// two-bucket convolution estimates behind [`QueryPlan::score_floor`] are
/// deliberately coarse, so only a k-th observed score under 85% of the
/// prediction is reported as "came in below what PLANGEN expected". The
/// *decision* signals — under-filled top-k and per-pattern predicted
/// relaxed-best versus the observed k-th score — are exact comparisons and
/// need no slack.
pub const FLOOR_TOLERANCE: f64 = 0.85;

/// How the engine treats speculative runs.
///
/// The default is read from the `SPECQP_SPEC` environment variable
/// (`off` | `detect` | `fallback` | `fallback:N` | `force`), falling back to
/// [`SpeculationPolicy::Off`]:
///
/// ```
/// use specqp::SpeculationPolicy;
///
/// assert_eq!(SpeculationPolicy::parse("off"), Some(SpeculationPolicy::Off));
/// assert_eq!(SpeculationPolicy::parse("detect"), Some(SpeculationPolicy::Detect));
/// assert_eq!(
///     SpeculationPolicy::parse("fallback"),
///     Some(SpeculationPolicy::Fallback { max_stages: specqp::speculation::DEFAULT_MAX_STAGES }),
/// );
/// assert_eq!(
///     SpeculationPolicy::parse("fallback:2"),
///     Some(SpeculationPolicy::Fallback { max_stages: 2 }),
/// );
/// assert_eq!(SpeculationPolicy::parse("force"), Some(SpeculationPolicy::ForceFinal));
/// assert_eq!(SpeculationPolicy::parse("fallback:0"), None, "at least one stage");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpeculationPolicy {
    /// Execute the speculative plan once and return whatever it produced —
    /// the pre-lifecycle behaviour, and the default.
    #[default]
    Off,
    /// Verify every speculative run and record verdicts in the statistics
    /// feedback ledger, but never re-execute. Mis-speculations surface as
    /// `RunReport::mis_speculated` and teach the planner; the answers are
    /// returned as-is.
    Detect,
    /// Verify, and on a mis-speculation escalate the flagged patterns and
    /// re-execute, up to `max_stages` times. Stages `1‥max_stages−1` each
    /// relax the top remaining suspect; the final permitted stage executes
    /// the all-relaxed (TriniT) safety net, guaranteeing the result quality
    /// of the baseline whenever detection fires.
    Fallback {
        /// Maximum re-executions per query (≥ 1).
        max_stages: usize,
    },
    /// Diagnostic mode: skip verification and always take one fallback
    /// stage straight to the all-relaxed safety net. The answers are
    /// byte-identical to `Engine::run_trinit` — the differential suite uses
    /// this to prove the recovery path end to end. No feedback is recorded
    /// (a forced verdict says nothing about the plan).
    ForceFinal,
}

impl SpeculationPolicy {
    /// Reads `SPECQP_SPEC`, defaulting to [`SpeculationPolicy::Off`].
    ///
    /// # Panics
    /// Panics when the variable is set to something unparseable — CI sets
    /// this variable on purpose, and a typo silently falling back to `Off`
    /// would run the whole suite without the lifecycle it meant to test.
    pub fn from_env() -> Self {
        match std::env::var("SPECQP_SPEC") {
            Ok(v) => Self::parse(&v).unwrap_or_else(|| {
                panic!(
                    "SPECQP_SPEC={v:?} is not a valid speculation policy \
                     (expected off | detect | fallback | fallback:N | force)"
                )
            }),
            Err(_) => SpeculationPolicy::Off,
        }
    }

    /// Parses `off`, `detect`, `fallback`, `fallback:N` (or `fallback=N`,
    /// `N ≥ 1`) and `force`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("off") {
            return Some(SpeculationPolicy::Off);
        }
        if s.eq_ignore_ascii_case("detect") {
            return Some(SpeculationPolicy::Detect);
        }
        if s.eq_ignore_ascii_case("force") || s.eq_ignore_ascii_case("force-final") {
            return Some(SpeculationPolicy::ForceFinal);
        }
        if s.eq_ignore_ascii_case("fallback") {
            return Some(SpeculationPolicy::Fallback {
                max_stages: DEFAULT_MAX_STAGES,
            });
        }
        let rest = s
            .strip_prefix("fallback:")
            .or_else(|| s.strip_prefix("fallback="))?;
        let n: usize = rest.parse().ok()?;
        if n == 0 {
            None
        } else {
            Some(SpeculationPolicy::Fallback { max_stages: n })
        }
    }

    /// `true` when the policy runs the verifier at all.
    pub fn verifies(self) -> bool {
        self != SpeculationPolicy::Off
    }

    /// `true` when the policy may re-execute after a mis-speculation.
    pub fn recovers(self) -> bool {
        matches!(
            self,
            SpeculationPolicy::Fallback { .. } | SpeculationPolicy::ForceFinal
        )
    }
}

/// The verifier's classification of one speculative execution.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// `true` when the run is classified as mis-speculated (some suspect
    /// exists that escalation could plausibly fix).
    pub mis_speculated: bool,
    /// The top-k came back with fewer than `k` answers while pruned
    /// relaxations remained unprocessed.
    pub under_filled: bool,
    /// The k-th observed score fell below
    /// [`FLOOR_TOLERANCE`]` × `[`QueryPlan::score_floor`].
    pub below_floor: bool,
    /// Pruned patterns whose relaxations are suspected of holding missing
    /// top-k answers, strongest suspicion first. Always a subset of
    /// [`Verdict::candidates`].
    pub suspects: Vec<usize>,
    /// Every escalation candidate: patterns the plan pruned that do have
    /// registered relaxations. Empty for all-relaxed plans — such runs are
    /// never mis-speculated because there is nothing left to escalate.
    pub candidates: Vec<usize>,
}

impl Verdict {
    /// A clean verdict (nothing suspected, nothing to escalate).
    pub fn clean() -> Self {
        Verdict {
            mis_speculated: false,
            under_filled: false,
            below_floor: false,
            suspects: Vec::new(),
            candidates: Vec::new(),
        }
    }
}

/// Escalation candidates of `plan`: pattern indices that were pruned (not
/// relaxed) but have registered relaxations, ascending.
pub fn escalation_candidates(
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
) -> Vec<usize> {
    query
        .patterns()
        .iter()
        .enumerate()
        .filter(|(i, p)| !plan.is_relaxed(*i) && registry.relaxation_count(p) > 0)
        .map(|(i, _)| i)
        .collect()
}

/// Inspects the outcome of executing `plan` and classifies the run.
///
/// `answers` must be the plan's top-`k` result, best first (what the
/// executors return). Two signals flag a mis-speculation, both gated on the
/// existence of escalation candidates:
///
/// * **under-filled** — fewer than `k` answers came back, so any pruned
///   relaxation might contribute; every candidate becomes a suspect;
/// * **predicted beater** — `k` answers came back but some pruned pattern's
///   predicted relaxed-best score
///   ([`QueryPlan::predicted_relaxed_best`]) beats the observed k-th score.
///   PLANGEN pruned that pattern because `E'(1) ≤ E_Q(k)`-estimate; the
///   observed k-th score replacing the estimate falsifies the inequality,
///   so the pattern becomes a suspect.
///
/// The verdict additionally reports [`below_floor`](Verdict::below_floor)
/// when the k-th observed score fell under [`FLOOR_TOLERANCE`] of the
/// plan's carried floor `E_Q(k)` — a diagnostic for how far reality missed
/// the prediction.
///
/// Suspects are ranked by predicted relaxed-best score (falling back to the
/// pattern's top relaxation weight for hand-built plans), descending, ties
/// by index.
///
/// ```
/// use relax::{Position, RelaxationRegistry, TermRule};
/// use specqp::{speculation::verify, QueryPlan};
/// use sparql::QueryBuilder;
/// use specqp_common::TermId;
///
/// let (ty, singer, lyricist, vocalist) = (TermId(0), TermId(1), TermId(2), TermId(3));
/// let mut b = QueryBuilder::new();
/// let s = b.var("s");
/// b.pattern(s, ty, singer);
/// b.pattern(s, ty, lyricist);
/// let query = b.build().unwrap();
/// let mut registry = RelaxationRegistry::new();
/// registry.add(TermRule::with_context(Position::Object, singer, vocalist, 0.8, ty));
///
/// // A bare plan that returned nothing for k = 5: under-filled, and the
/// // singer pattern (the only one with a relaxation) is the suspect.
/// let verdict = verify(&query, &QueryPlan::none_relaxed(2), &registry, &[], 5);
/// assert!(verdict.mis_speculated && verdict.under_filled);
/// assert_eq!(verdict.suspects, vec![0]);
///
/// // The all-relaxed plan has nothing left to escalate: always clean.
/// let verdict = verify(&query, &QueryPlan::all_relaxed(2), &registry, &[], 5);
/// assert!(!verdict.mis_speculated);
/// ```
pub fn verify(
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    answers: &[PartialAnswer],
    k: usize,
) -> Verdict {
    if k == 0 {
        // Nothing was requested, so nothing can be missing (and there is no
        // k-th answer to inspect).
        return Verdict::clean();
    }
    let candidates = escalation_candidates(query, plan, registry);
    if candidates.is_empty() {
        return Verdict::clean();
    }

    // Suspicion strength: the plan's prediction where available, otherwise
    // the best score the pattern's top relaxation could possibly contribute
    // (its weight, by Def. 5 normalization).
    let potential = |i: usize| -> Score {
        plan.predicted_relaxed_best(i).unwrap_or_else(|| {
            registry
                .top_relaxation_for(&query.patterns()[i])
                .map(|r| Score::new(r.weight))
                .unwrap_or(Score::ZERO)
        })
    };
    let rank = |mut idx: Vec<usize>| -> Vec<usize> {
        idx.sort_by(|&a, &b| potential(b).cmp(&potential(a)).then(a.cmp(&b)));
        idx
    };

    let under_filled = answers.len() < k;
    if under_filled {
        return Verdict {
            mis_speculated: true,
            under_filled: true,
            below_floor: false,
            suspects: rank(candidates.clone()),
            candidates,
        };
    }

    let kth = answers[k - 1].score;
    let below_floor = plan
        .score_floor()
        .is_some_and(|floor| kth.value() < floor.value() * FLOOR_TOLERANCE);
    // Suspect = a pruned pattern whose predicted relaxed-best beats what we
    // actually observed at rank k: PLANGEN pruned it because
    // `E'(1) ≤ E_Q(k)-estimate`, and the observed k-th score has just
    // falsified the right-hand side of that inequality.
    let suspects: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| plan.predicted_relaxed_best(i).is_some_and(|b| b > kth))
        .collect();
    Verdict {
        mis_speculated: !suspects.is_empty(),
        under_filled: false,
        below_floor,
        suspects: rank(suspects),
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use operators::Binding;
    use relax::{Position, TermRule};
    use sparql::{QueryBuilder, Var};
    use specqp_common::TermId;

    const TY: TermId = TermId(0);
    const A: TermId = TermId(1);
    const B: TermId = TermId(2);
    const RA: TermId = TermId(3);
    const RB: TermId = TermId(4);

    fn query() -> Query {
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, TY, A);
        b.pattern(s, TY, B);
        b.build().unwrap()
    }

    fn registry(weights: &[(TermId, TermId, f64)]) -> RelaxationRegistry {
        let mut reg = RelaxationRegistry::new();
        for &(from, to, w) in weights {
            reg.add(TermRule::with_context(Position::Object, from, to, w, TY));
        }
        reg
    }

    fn ans(id: u32, score: f64) -> PartialAnswer {
        PartialAnswer::new(
            Binding::from_pairs(vec![(Var(0), TermId(id))]),
            Score::new(score),
        )
    }

    #[test]
    fn policy_parsing_and_env_contract() {
        assert_eq!(
            SpeculationPolicy::parse("OFF"),
            Some(SpeculationPolicy::Off)
        );
        assert_eq!(
            SpeculationPolicy::parse(" fallback=5 "),
            Some(SpeculationPolicy::Fallback { max_stages: 5 })
        );
        assert_eq!(SpeculationPolicy::parse("bogus"), None);
        assert_eq!(SpeculationPolicy::parse(""), None);
        assert!(!SpeculationPolicy::Off.verifies());
        assert!(SpeculationPolicy::Detect.verifies());
        assert!(!SpeculationPolicy::Detect.recovers());
        assert!(SpeculationPolicy::ForceFinal.recovers());
        assert_eq!(SpeculationPolicy::default(), SpeculationPolicy::Off);
    }

    #[test]
    fn k_zero_is_always_clean() {
        let q = query();
        let reg = registry(&[(A, RA, 0.9)]);
        // Regression: `answers[k - 1]` used to underflow for k = 0.
        let v = verify(&q, &QueryPlan::none_relaxed(2), &reg, &[], 0);
        assert_eq!(v, Verdict::clean());
    }

    #[test]
    fn no_candidates_is_always_clean() {
        let q = query();
        // No relaxations registered at all.
        let reg = registry(&[]);
        let v = verify(&q, &QueryPlan::none_relaxed(2), &reg, &[], 10);
        assert_eq!(v, Verdict::clean());
        // All patterns already relaxed.
        let reg = registry(&[(A, RA, 0.9), (B, RB, 0.8)]);
        let v = verify(&q, &QueryPlan::all_relaxed(2), &reg, &[], 10);
        assert!(!v.mis_speculated && v.candidates.is_empty());
    }

    #[test]
    fn under_filled_flags_all_candidates_ranked_by_weight() {
        let q = query();
        let reg = registry(&[(A, RA, 0.6), (B, RB, 0.9)]);
        let v = verify(&q, &QueryPlan::none_relaxed(2), &reg, &[ans(1, 2.0)], 3);
        assert!(v.mis_speculated && v.under_filled && !v.below_floor);
        assert_eq!(v.candidates, vec![0, 1]);
        assert_eq!(v.suspects, vec![1, 0], "stronger relaxation first");
    }

    #[test]
    fn filled_run_without_floor_is_clean() {
        let q = query();
        let reg = registry(&[(A, RA, 0.9)]);
        let answers = [ans(1, 2.0), ans(2, 1.5)];
        let v = verify(&q, &QueryPlan::none_relaxed(2), &reg, &answers, 2);
        assert!(!v.mis_speculated, "hand-built plans carry no floor");
        assert_eq!(v.candidates, vec![0]);
    }

    #[test]
    fn filled_run_flags_only_predicted_beaters() {
        let q = query();
        let reg = registry(&[(A, RA, 0.9), (B, RB, 0.8)]);
        // Plan predicted the k-th original score at 1.8; pattern 0's relaxed
        // best was predicted at 1.5 (beats the observed 0.4), pattern 1's at
        // 0.3 (cannot help).
        let plan = QueryPlan::none_relaxed(2).with_predictions(
            Some(Score::new(1.8)),
            vec![Some(Score::new(1.5)), Some(Score::new(0.3))],
        );
        let answers = [ans(1, 2.0), ans(2, 0.4)];
        let v = verify(&q, &plan, &reg, &answers, 2);
        assert!(v.mis_speculated && !v.under_filled);
        assert!(v.below_floor, "0.4 < 0.85·1.8 is also a reported shortfall");
        assert_eq!(v.suspects, vec![0], "only the predicted beater");

        // A k-th score above every predicted relaxed-best: clean, and above
        // the floor diagnostic too.
        let answers = [ans(1, 2.0), ans(2, 1.6)];
        let v = verify(&q, &plan, &reg, &answers, 2);
        assert!(!v.mis_speculated && !v.below_floor);
    }

    #[test]
    fn shortfall_with_no_beater_is_not_actionable() {
        let q = query();
        let reg = registry(&[(A, RA, 0.9)]);
        // Reality came in far under the predicted floor (0.2 < 0.85·1.8),
        // but no pruned relaxation was predicted to beat the observed k-th:
        // escalation cannot fix it, so the run is reported (below_floor)
        // without being classified mis-speculated.
        let plan = QueryPlan::none_relaxed(2)
            .with_predictions(Some(Score::new(1.8)), vec![Some(Score::new(0.1)), None]);
        let answers = [ans(1, 2.0), ans(2, 0.2)];
        let v = verify(&q, &plan, &reg, &answers, 2);
        assert!(v.below_floor, "the shortfall is real…");
        assert!(
            !v.mis_speculated && v.suspects.is_empty(),
            "…but escalation cannot fix it"
        );
    }
}
