//! A sharded, bounded plan cache keyed by canonical query shape.
//!
//! Spec-QP amortizes planning effort across a workload: under serving
//! traffic the same query *shapes* (templates instantiated with the same
//! constants but arbitrary variable names) recur, and PLANGEN's decision
//! depends only on the shape and `k` — not on variable names. The cache maps
//! [`QueryShape`] to the generated [`QueryPlan`] so repeated shapes skip
//! PLANGEN entirely.
//!
//! Concurrency model: the key space is split over `N` shards, each behind
//! its own `Mutex`, so service worker threads planning different shapes
//! rarely contend. Per-shard capacity is bounded with FIFO eviction.
//! Hit/miss/insertion/eviction counts are recorded in a shared
//! [`CacheMetrics`] handle (`operators::metrics`), maintaining the invariant
//! `hits + misses == lookups`.
//!
//! Staleness model: every cached plan is stamped with the statistics-catalog
//! **feedback generation** it was planned under
//! ([`StatsCatalog::generation`](specqp_stats::StatsCatalog::generation)).
//! A lookup passes the *current* generation; entries stamped older are
//! dropped on sight (counted as `stale` + `miss`), so a feedback refit can
//! never serve a plan that pre-dates what the planner has since learned.
//! The generation is deliberately **global**: a bump invalidates every
//! cached shape, not just those containing the refitted pattern — a
//! correctness-first coarseness. It stays cheap because bias flips are rare
//! and self-limiting (the ledger's settled/exoneration machinery lets each
//! pattern flip at most a handful of times per process before converging),
//! after which the cache runs at full hit rate again. Per-dependency
//! stamping would bound invalidation to affected shapes if workloads ever
//! make flips frequent.

use crate::plan::QueryPlan;
use operators::{CacheMetrics, CacheMetricsHandle};
use sparql::{Query, Term, Var};
use specqp_common::hash::fx_hash_one;
use specqp_common::{FxHashMap, TermId};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One pattern's slot in a [`QueryShape`]: the constant components plus the
/// canonical numbers of its variable positions (`u16::MAX` = constant
/// slot). `u16` leaves room for 65 535 distinct variables per query — far
/// beyond any realizable pattern list (each pattern introduces ≤ 3).
type ShapeSlot = (Option<TermId>, Option<TermId>, Option<TermId>, [u16; 3]);

/// Variable-name-insensitive identity of a planning problem: the pattern
/// structure (constants + canonically renumbered variables, in query order)
/// and the requested `k`.
///
/// Two queries that differ only in variable names produce equal shapes; any
/// difference in constants, join structure, pattern order or `k` produces a
/// different shape.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QueryShape {
    slots: Vec<ShapeSlot>,
    k: usize,
}

impl QueryShape {
    /// Canonicalizes `query` + `k`: variables are renumbered in first-seen
    /// order across the whole pattern list, erasing their names.
    pub fn of(query: &Query, k: usize) -> Self {
        let mut var_map: FxHashMap<Var, u16> = FxHashMap::default();
        let mut slots = Vec::with_capacity(query.len());
        for p in query.patterns() {
            let mut slot = [u16::MAX; 3];
            for (i, t) in [p.s, p.p, p.o].into_iter().enumerate() {
                if let Term::Var(v) = t {
                    let next = var_map.len();
                    assert!(
                        next < usize::from(u16::MAX),
                        "query exceeds {} distinct variables",
                        u16::MAX
                    );
                    slot[i] = *var_map.entry(v).or_insert(next as u16);
                }
            }
            let (s, pp, o) = p.const_parts();
            slots.push((s, pp, o, slot));
        }
        QueryShape { slots, k }
    }

    /// The `k` this shape was planned for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of patterns in the shape.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` for a shape with no patterns (never produced by valid queries).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// One cached plan plus the feedback generation it was planned under.
#[derive(Debug)]
struct CachedPlan {
    plan: QueryPlan,
    generation: u64,
}

/// One shard: a bounded map plus FIFO insertion order for eviction.
#[derive(Default, Debug)]
struct Shard {
    map: FxHashMap<QueryShape, CachedPlan>,
    order: VecDeque<QueryShape>,
}

/// A sharded, bounded, thread-safe map from [`QueryShape`] to [`QueryPlan`].
#[derive(Debug)]
pub struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard_capacity: usize,
    metrics: CacheMetricsHandle,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(Self::DEFAULT_SHARDS, Self::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default shard count (a power of two keeps the selector a mask).
    pub const DEFAULT_SHARDS: usize = 16;
    /// Default total capacity across all shards.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a cache with `shards` shards and `capacity` total entries
    /// (rounded up to at least one entry per shard).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            metrics: CacheMetrics::new_handle(),
        }
    }

    /// The shared counter handle (hits, misses, insertions, evictions).
    pub fn metrics(&self) -> &CacheMetricsHandle {
        &self.metrics
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache poisoned").map.len())
            .sum()
    }

    /// `true` when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, shape: &QueryShape) -> &Mutex<Shard> {
        let h = fx_hash_one(shape) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks up the plan for `shape` as of feedback `generation`, counting a
    /// hit or a miss. An entry stamped with an older generation is dropped on
    /// sight (counted as `stale` in addition to the miss): the statistics
    /// feedback that bumped the generation may change PLANGEN's answer, so
    /// the stale plan must never be served.
    pub fn lookup(&self, shape: &QueryShape, generation: u64) -> Option<QueryPlan> {
        let mut shard = self.shard_for(shape).lock().expect("plan cache poisoned");
        match shard.map.get(shape) {
            Some(cached) if cached.generation >= generation => {
                self.metrics.count_hit();
                Some(cached.plan.clone())
            }
            Some(_) => {
                shard.map.remove(shape);
                shard.order.retain(|s| s != shape);
                self.metrics.count_stale();
                self.metrics.count_miss();
                None
            }
            None => {
                self.metrics.count_miss();
                None
            }
        }
    }

    /// Inserts `plan` for `shape`, stamped with the feedback `generation` it
    /// was planned under, unless a same-or-newer entry already exists (plans
    /// are deterministic per shape *and generation*, so the first insert
    /// wins and concurrent duplicates are dropped; a newer-generation insert
    /// replaces a stale entry in place). Evicts the oldest entry of a full
    /// shard. Returns `true` when the plan was actually stored.
    pub fn insert(&self, shape: QueryShape, plan: QueryPlan, generation: u64) -> bool {
        let mut shard = self.shard_for(&shape).lock().expect("plan cache poisoned");
        if let Some(cached) = shard.map.get_mut(&shape) {
            if cached.generation >= generation {
                return false;
            }
            // Refresh a stale entry in place; it keeps its eviction slot.
            *cached = CachedPlan { plan, generation };
            self.metrics.count_stale();
            self.metrics.count_insertion();
            return true;
        }
        if shard.map.len() >= self.per_shard_capacity {
            if let Some(oldest) = shard.order.pop_front() {
                shard.map.remove(&oldest);
                self.metrics.count_eviction();
            }
        }
        shard.order.push_back(shape.clone());
        shard.map.insert(shape, CachedPlan { plan, generation });
        self.metrics.count_insertion();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparql::QueryBuilder;

    fn query(var_names: [&str; 2], classes: [u32; 2]) -> Query {
        let mut b = QueryBuilder::new();
        let s = b.var(var_names[0]);
        let o = b.var(var_names[1]);
        b.pattern(s, TermId(0), TermId(classes[0]));
        b.pattern(s, TermId(0), TermId(classes[1]));
        b.pattern(s, TermId(1), o);
        b.build().unwrap()
    }

    #[test]
    fn shape_erases_variable_names() {
        let a = QueryShape::of(&query(["s", "o"], [5, 6]), 10);
        let b = QueryShape::of(&query(["x", "y"], [5, 6]), 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.k(), 10);
    }

    #[test]
    fn shape_distinguishes_constants_and_k() {
        let a = QueryShape::of(&query(["s", "o"], [5, 6]), 10);
        let b = QueryShape::of(&query(["s", "o"], [5, 7]), 10);
        let c = QueryShape::of(&query(["s", "o"], [5, 6]), 11);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shape_distinguishes_join_structure() {
        // ?s <0> <5> . ?s <0> <6> vs ?s <0> <5> . ?t <0> <6>: same constants,
        // different variable topology.
        let mut b1 = QueryBuilder::new();
        let s = b1.var("s");
        b1.pattern(s, TermId(0), TermId(5));
        b1.pattern(s, TermId(0), TermId(6));
        let star = b1.build().unwrap();
        let mut b2 = QueryBuilder::new();
        let s = b2.var("s");
        let t = b2.var("t");
        b2.pattern(s, TermId(0), TermId(5));
        b2.pattern(t, TermId(0), TermId(6));
        let cross = b2.build().unwrap();
        assert_ne!(QueryShape::of(&star, 5), QueryShape::of(&cross, 5));
    }

    #[test]
    fn lookup_insert_roundtrip_with_metrics() {
        let cache = PlanCache::default();
        let shape = QueryShape::of(&query(["s", "o"], [5, 6]), 10);
        assert!(cache.lookup(&shape, 0).is_none());
        assert!(cache.insert(shape.clone(), QueryPlan::new(3, &[1]), 0));
        // Duplicate same-generation insert is refused.
        assert!(!cache.insert(shape.clone(), QueryPlan::new(3, &[2]), 0));
        let got = cache.lookup(&shape, 0).unwrap();
        assert_eq!(got, QueryPlan::new(3, &[1]), "first insert wins");
        let m = cache.metrics();
        assert_eq!(m.lookups(), 2);
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 1);
        assert_eq!(m.insertions(), 1);
        assert_eq!(m.evictions(), 0);
        assert_eq!(m.stale(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn full_shard_evicts_oldest() {
        // Single shard, capacity 2 → inserting a third shape evicts the first.
        let cache = PlanCache::new(1, 2);
        let shapes: Vec<QueryShape> = (0..3)
            .map(|i| QueryShape::of(&query(["s", "o"], [i, i + 10]), 10))
            .collect();
        for s in &shapes {
            assert!(cache.insert(s.clone(), QueryPlan::none_relaxed(3), 0));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.metrics().evictions(), 1);
        assert!(
            cache.lookup(&shapes[0], 0).is_none(),
            "oldest entry evicted"
        );
        assert!(cache.lookup(&shapes[1], 0).is_some());
        assert!(cache.lookup(&shapes[2], 0).is_some());
    }

    /// A feedback-generation bump makes every older entry unservable: the
    /// lookup drops it (stale + miss) and a fresh insert replaces it.
    #[test]
    fn generation_bump_invalidates_cached_plans() {
        let cache = PlanCache::default();
        let shape = QueryShape::of(&query(["s", "o"], [5, 6]), 10);
        assert!(cache.insert(shape.clone(), QueryPlan::new(3, &[1]), 0));
        assert!(cache.lookup(&shape, 0).is_some(), "same generation serves");

        // Generation moved on: the old plan must not be served.
        assert!(cache.lookup(&shape, 1).is_none());
        let m = cache.metrics();
        assert_eq!(m.stale(), 1);
        assert_eq!(m.misses(), 1);
        assert_eq!(cache.len(), 0, "stale entry dropped eagerly");

        // Re-planned under the new generation: serves again, including for
        // later same-generation lookups.
        assert!(cache.insert(shape.clone(), QueryPlan::new(3, &[1, 2]), 1));
        assert_eq!(cache.lookup(&shape, 1).unwrap(), QueryPlan::new(3, &[1, 2]));
    }

    /// A newer-generation insert refreshes a stale entry in place instead of
    /// being refused as a duplicate.
    #[test]
    fn stale_entry_is_replaced_by_newer_insert() {
        let cache = PlanCache::new(1, 2);
        let shape = QueryShape::of(&query(["s", "o"], [5, 6]), 10);
        assert!(cache.insert(shape.clone(), QueryPlan::new(3, &[]), 0));
        assert!(cache.insert(shape.clone(), QueryPlan::new(3, &[0]), 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&shape, 2).unwrap(), QueryPlan::new(3, &[0]));
        // Older-generation insert never downgrades a newer entry.
        assert!(!cache.insert(shape.clone(), QueryPlan::new(3, &[]), 1));
        assert_eq!(cache.lookup(&shape, 2).unwrap(), QueryPlan::new(3, &[0]));
    }
}
