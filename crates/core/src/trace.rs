//! Timing and memory reports for query runs.

use std::time::Duration;

/// What one query execution cost (§4.3's efficiency metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Time spent in PLANGEN (zero for the TriniT baseline, which has no
    /// speculation step).
    pub planning: Duration,
    /// Time spent pulling the top-k through the operator tree.
    pub execution: Duration,
    /// The paper's memory proxy: answer objects created by scans, merges
    /// and joins.
    pub answers_created: u64,
    /// Sequential (sorted) accesses to input lists.
    pub sorted_accesses: u64,
    /// Random accesses (hash probes enumerated).
    pub random_accesses: u64,
    /// Priority-queue pushes inside rank joins.
    pub heap_pushes: u64,
}

impl RunReport {
    /// Planning + execution — the "runtimes" plotted in Figures 6–9
    /// ("We measure the time taken to plan and execute each query").
    pub fn total_time(&self) -> Duration {
        self.planning + self.execution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum() {
        let r = RunReport {
            planning: Duration::from_millis(2),
            execution: Duration::from_millis(40),
            ..Default::default()
        };
        assert_eq!(r.total_time(), Duration::from_millis(42));
    }
}
