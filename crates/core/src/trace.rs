//! Timing and memory reports for query runs.

use std::time::Duration;

/// What one query execution cost (§4.3's efficiency metrics), including the
/// speculation lifecycle's overhead when a verification policy is active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Time spent in PLANGEN (zero for the TriniT baseline, which has no
    /// speculation step).
    pub planning: Duration,
    /// Time spent pulling the top-k through the operator tree — summed over
    /// every fallback stage when the lifecycle re-executed.
    pub execution: Duration,
    /// Time spent in the mis-speculation verifier (zero under
    /// `SpeculationPolicy::Off`).
    pub verify: Duration,
    /// The paper's memory proxy: answer objects created by scans, merges
    /// and joins (all fallback stages included).
    pub answers_created: u64,
    /// Sequential (sorted) accesses to input lists.
    pub sorted_accesses: u64,
    /// Random accesses (hash probes enumerated).
    pub random_accesses: u64,
    /// Priority-queue pushes inside rank joins.
    pub heap_pushes: u64,
    /// Fallback re-executions taken by the speculation lifecycle.
    pub fallback_stages: u64,
    /// Answer objects whose work was discarded because the execution that
    /// produced them was abandoned by a fallback stage — the measured price
    /// of wrong speculative guesses.
    pub wasted_answers: u64,
    /// `true` when the verifier classified the run as mis-speculated (under
    /// `Detect` the answers are returned anyway; under `Fallback` they come
    /// from the recovery stages).
    pub mis_speculated: bool,
}

impl RunReport {
    /// Planning + execution + verification — the "runtimes" plotted in
    /// Figures 6–9 ("We measure the time taken to plan and execute each
    /// query"), extended with the lifecycle's verify phase so fallback
    /// overhead is never hidden from the headline number.
    pub fn total_time(&self) -> Duration {
        self.planning + self.execution + self.verify
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum() {
        let r = RunReport {
            planning: Duration::from_millis(2),
            execution: Duration::from_millis(40),
            verify: Duration::from_millis(1),
            ..Default::default()
        };
        assert_eq!(r.total_time(), Duration::from_millis(43));
    }

    #[test]
    fn default_report_has_no_lifecycle_activity() {
        let r = RunReport::default();
        assert_eq!(r.verify, Duration::ZERO);
        assert_eq!(r.fallback_stages, 0);
        assert_eq!(r.wasted_answers, 0);
        assert!(!r.mis_speculated);
    }
}
