//! Morsel-driven intra-query parallelism.
//!
//! One pattern's scan — the *partition target* — is split into rank-range
//! morsels handed out by a shared [`MorselDispenser`]; every worker thread
//! owns a complete private operator tree whose target scan pulls morsels
//! from the dispenser, so workers that finish cheap morsels immediately
//! steal the next one. Non-target scans run whole in every worker: because
//! the target's rows partition exactly, each answer the sequential plan
//! produces is found by exactly one worker, and the per-worker top-k sets
//! together cover the global top-k.
//!
//! Merging back is the same canonical collection order the naive executor
//! uses — total `(score desc, binding asc)` order, truncated to `k` — so
//! parallel answers are **bit-identical** to sequential block execution
//! regardless of worker count or morsel size.
//!
//! # What may be partitioned
//!
//! Only a scan whose rows have pairwise-distinct bindings can be split:
//! a relaxed singleton's [`IncrementalMerge`](operators::IncrementalMerge)
//! deduplicates across its *whole* input (max-score semantics), so splitting
//! it would surface the same binding from two workers at different scores.
//! [`partition_target`] therefore only considers join-group members and
//! singletons with no applicable relaxations, and picks the one with the
//! longest match list (most work to spread).

use kgstore::{KnowledgeGraph, PatternKey};
use relax::{ChainRuleSet, RelaxationRegistry};
use sparql::Query;
use std::rc::Rc;
use std::sync::Arc;

use operators::{
    top_k_blocks, MetricsHandle, MorselDispenser, OpMetrics, PartialAnswer, PullStrategy,
};

use crate::executor::build_block_stream_morsels;
use crate::plan::QueryPlan;

/// Picks which pattern's scan to partition across workers, or `None` when
/// no pattern is safely partitionable (fall back to sequential execution).
///
/// Eligible patterns are those whose scan streams pairwise-distinct
/// bindings: join-group members (always bare scans) and singletons with no
/// term or chain relaxations applicable. Among the eligible, the longest
/// match list wins; ties break to the lowest pattern index so the choice is
/// deterministic. Lists shorter than 2 rows are never worth splitting.
pub fn partition_target(
    graph: &KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
) -> Option<usize> {
    let patterns = query.patterns();
    let fresh = query.var_count() as u32;
    let mut best: Option<(usize, usize)> = None; // (list len, pattern index)
    for (i, pattern) in patterns.iter().enumerate() {
        let eligible = if plan.is_relaxed(i) {
            registry.relaxation_count(pattern) == 0
                && chains.chain_relaxations_for(pattern, fresh).is_empty()
        } else {
            true
        };
        if !eligible {
            continue;
        }
        let (s, p, o) = pattern.const_parts();
        let len = graph.matches(PatternKey { s, p, o }).len();
        if len >= 2 && best.is_none_or(|(blen, _)| len > blen) {
            best = Some((len, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Runs the block plan with pattern `target`'s scan partitioned across
/// `workers` threads, merging per-worker top-k sets into the same answer
/// vector sequential execution produces.
///
/// Each worker builds its own operator tree around thread-private
/// [`OpMetrics`] (the per-query handle is an `Rc` and cannot cross
/// threads); after the scoped join the private counters are
/// [absorbed](OpMetrics::absorb) into `metrics`. Note that work counters
/// legitimately exceed the sequential run's — non-target scans repeat in
/// every worker — while the returned answers do not change at all.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_blocks_parallel(
    graph: &KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    k: usize,
    block_size: usize,
    workers: usize,
    target: usize,
) -> Vec<PartialAnswer> {
    let (s, p, o) = query.patterns()[target].const_parts();
    let total = graph.matches(PatternKey { s, p, o }).len();
    let workers = workers.max(1).min(total.max(1));
    let dispenser = Arc::new(MorselDispenser::for_workers(total, workers));

    let per_worker: Vec<(Vec<PartialAnswer>, OpMetrics)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let dispenser = Arc::clone(&dispenser);
                scope.spawn(move || {
                    let worker_metrics = OpMetrics::new_handle();
                    let answers = {
                        let mut stream = build_block_stream_morsels(
                            graph,
                            query,
                            plan,
                            registry,
                            chains,
                            worker_metrics.clone(),
                            strategy,
                            block_size,
                            target,
                            dispenser,
                        );
                        top_k_blocks(&mut stream, k)
                    };
                    let counters = Rc::try_unwrap(worker_metrics)
                        .expect("operator tree dropped, worker handle is unique");
                    (answers, counters)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });

    let mut acc = Vec::new();
    for (answers, counters) in &per_worker {
        metrics.absorb(counters);
        acc.extend(answers.iter().cloned());
    }
    // Canonical collection order (score desc, binding asc) — the same total
    // order `run_naive` sorts by — then truncate to the global top-k.
    acc.sort_by(|a, b| b.cmp(a));
    acc.truncate(k);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_naive, run_plan_blocks_with_chains};
    use kgstore::KnowledgeGraphBuilder;
    use relax::{Position, TermRule};
    use sparql::QueryBuilder;

    fn setup() -> (KnowledgeGraph, RelaxationRegistry) {
        let mut b = KnowledgeGraphBuilder::new();
        for (i, (c, base)) in [("singer", 100.0), ("lyricist", 60.0)].iter().enumerate() {
            for n in 0..40 {
                b.add(
                    &format!("e{n}"),
                    "type",
                    c,
                    base - (n as f64) - i as f64 * 0.25,
                );
            }
        }
        b.add("only-singer", "type", "singer", 55.0);
        b.add("only-vocalist", "type", "vocalist", 54.0);
        b.add("only-vocalist", "type", "lyricist", 53.0);
        let g = b.build();
        let d = g.dictionary();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("singer").unwrap(),
            d.lookup("vocalist").unwrap(),
            0.8,
            d.lookup("type").unwrap(),
        ));
        (g, reg)
    }

    fn query(g: &KnowledgeGraph) -> Query {
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, ty, d.lookup("singer").unwrap());
        b.pattern(s, ty, d.lookup("lyricist").unwrap());
        b.project(s);
        b.build().unwrap()
    }

    #[test]
    fn target_is_deterministic_and_skips_relaxed_singletons() {
        let (g, reg) = setup();
        let q = query(&g);
        let chains = ChainRuleSet::new();
        // Pattern 0 (singer) has a relaxation; as a singleton it must be
        // skipped, leaving pattern 1 (lyricist).
        let all = QueryPlan::all_relaxed(2);
        assert_eq!(partition_target(&g, &q, &all, &reg, &chains), Some(1));
        // As join-group members both are bare scans; singer's list (41) beats
        // lyricist's (40).
        let none = QueryPlan::none_relaxed(2);
        assert_eq!(partition_target(&g, &q, &none, &reg, &chains), Some(0));
    }

    #[test]
    fn parallel_answers_are_bit_identical_to_sequential() {
        let (g, reg) = setup();
        let q = query(&g);
        let chains = ChainRuleSet::new();
        for plan in [QueryPlan::all_relaxed(2), QueryPlan::none_relaxed(2)] {
            let Some(target) = partition_target(&g, &q, &plan, &reg, &chains) else {
                continue;
            };
            let m = OpMetrics::new_handle();
            let seq = run_plan_blocks_with_chains(
                &g,
                &q,
                &plan,
                &reg,
                &chains,
                m,
                PullStrategy::Adaptive,
                10,
                8,
            );
            for workers in [1, 2, 3, 8] {
                let m = OpMetrics::new_handle();
                let par = run_plan_blocks_parallel(
                    &g,
                    &q,
                    &plan,
                    &reg,
                    &chains,
                    m.clone(),
                    PullStrategy::Adaptive,
                    10,
                    8,
                    workers,
                    target,
                );
                assert_eq!(seq.len(), par.len(), "k mismatch at {workers} workers");
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.binding, b.binding, "{workers} workers");
                    assert!(a.score.approx_eq(b.score, 1e-12), "{workers} workers");
                }
                assert!(m.answers_created() > 0, "worker metrics were absorbed");
            }
        }
    }

    #[test]
    fn parallel_matches_naive_ground_truth() {
        let (g, reg) = setup();
        let q = query(&g);
        let chains = ChainRuleSet::new();
        let plan = QueryPlan::all_relaxed(2);
        let naive = run_naive(&g, &q, &reg, 5);
        let target = partition_target(&g, &q, &plan, &reg, &chains).unwrap();
        let m = OpMetrics::new_handle();
        let par = run_plan_blocks_parallel(
            &g,
            &q,
            &plan,
            &reg,
            &chains,
            m,
            PullStrategy::Adaptive,
            5,
            16,
            4,
            target,
        );
        assert_eq!(naive.len(), par.len());
        for (a, b) in naive.iter().zip(&par) {
            assert_eq!(a.binding, b.binding);
            assert!(a.score.approx_eq(b.score, 1e-9));
        }
    }

    #[test]
    fn tiny_lists_refuse_partitioning() {
        let mut b = KnowledgeGraphBuilder::new();
        b.add("a", "type", "singer", 1.0);
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut qb = QueryBuilder::new();
        let s = qb.var("s");
        qb.pattern(s, ty, d.lookup("singer").unwrap());
        qb.project(s);
        let q = qb.build().unwrap();
        let reg = RelaxationRegistry::new();
        let chains = ChainRuleSet::new();
        assert_eq!(
            partition_target(&g, &q, &QueryPlan::none_relaxed(1), &reg, &chains),
            None
        );
    }
}
