//! Plan execution: operator-tree construction (§3.2.2) and the reference
//! executors.
//!
//! Given a [`QueryPlan`]:
//!
//! 1. the **join group** becomes a left-deep chain of rank joins over plain
//!    [`PatternScan`]s (no relaxations),
//! 2. every **singleton** becomes an [`IncrementalMerge`] over the
//!    pattern's scan (weight 1) and one scan per relaxation (weight `wᵢ`),
//! 3. the join-group stream and the singleton streams are combined with
//!    further rank joins (Fig. 5).
//!
//! The TriniT baseline (§2.1, Fig. 2) is simply
//! [`QueryPlan::all_relaxed`] run through the same machinery. [`run_naive`]
//! is a brute-force executor (materialize + hash join + sort) used as ground
//! truth by the test suite.

use crate::plan::QueryPlan;
use kgstore::KnowledgeGraph;
use operators::{
    top_k, top_k_blocks, BlockIncrementalMerge, BlockRankJoin, BlockScan, BoxedBlockStream,
    BoxedStream, IncrementalMerge, MetricsHandle, MorselDispenser, PartialAnswer, PatternScan,
    Projected, PullStrategy, RankJoin, RankedStream, RowsToBlocks, Scaled,
};
use relax::{ChainRuleSet, RelaxationRegistry};
use sparql::{Query, Var};
use specqp_common::{FxHashMap, Score};
use std::sync::Arc;

/// Builds the operator tree for `plan` over `query`.
///
/// Returns the root stream; pull [`top_k`] answers from it. Every operator
/// shares `metrics`, so the paper's "answer objects created" counter
/// aggregates the whole tree.
pub fn build_plan_stream<'g>(
    graph: &'g KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    metrics: MetricsHandle,
    strategy: PullStrategy,
) -> BoxedStream<'g> {
    static NO_CHAINS: std::sync::OnceLock<ChainRuleSet> = std::sync::OnceLock::new();
    build_plan_stream_with_chains(
        graph,
        query,
        plan,
        registry,
        NO_CHAINS.get_or_init(ChainRuleSet::new),
        metrics,
        strategy,
    )
}

/// [`build_plan_stream`] plus chain relaxations (the paper's future-work
/// extension): every singleton's incremental merge additionally consumes,
/// per applicable [`ChainRule`](relax::ChainRule), a rank join over the
/// chain's scans, scaled into `[0, w]` (`w/len` per hop) and projected back
/// onto the original pattern's variables so Def.-8 max-deduplication still
/// applies.
#[allow(clippy::too_many_arguments)]
pub fn build_plan_stream_with_chains<'g>(
    graph: &'g KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
    metrics: MetricsHandle,
    strategy: PullStrategy,
) -> BoxedStream<'g> {
    assert_eq!(plan.len(), query.len(), "plan/query arity mismatch");
    let patterns = query.patterns();
    let mut next_fresh = query.var_count() as u32;

    // Each entry: (stream, variables it binds — sorted).
    let mut parts: Vec<(BoxedStream<'g>, Vec<Var>)> = Vec::new();

    // 1. Join group: left-deep rank joins over bare scans.
    let join_group = plan.join_group();
    if !join_group.is_empty() {
        let mut acc: Option<(BoxedStream<'g>, Vec<Var>)> = None;
        for &i in &join_group {
            let scan: BoxedStream<'g> = Box::new(PatternScan::new(
                graph,
                patterns[i],
                Score::ONE,
                metrics.clone(),
            ));
            let vars: Vec<Var> = collect_vars(&[patterns[i]]);
            acc = Some(match acc {
                None => (scan, vars),
                Some((left, lvars)) => join(left, lvars, scan, vars, strategy, &metrics),
            });
        }
        parts.push(acc.expect("non-empty join group"));
    }

    // 2. Singletons: incremental merges over the pattern + its relaxations
    //    (term rules and, if configured, chain rules).
    for i in plan.singletons() {
        let mut inputs: Vec<BoxedStream<'g>> = Vec::new();
        inputs.push(Box::new(PatternScan::new(
            graph,
            patterns[i],
            Score::ONE,
            metrics.clone(),
        )));
        for r in registry.relaxations_for(&patterns[i]) {
            inputs.push(Box::new(PatternScan::new(
                graph,
                r.pattern,
                Score::new(r.weight),
                metrics.clone(),
            )));
        }
        for c in chains.chain_relaxations_for(&patterns[i], next_fresh) {
            next_fresh += c.fresh_vars.len() as u32;
            inputs.push(build_chain_stream(
                graph,
                &c,
                &patterns[i],
                &metrics,
                strategy,
            ));
        }
        let merge: BoxedStream<'g> = Box::new(IncrementalMerge::new(inputs));
        parts.push((merge, collect_vars(&[patterns[i]])));
    }

    // 3. Combine all parts with rank joins, left-deep in construction order.
    let mut iter = parts.into_iter();
    let (mut acc, mut acc_vars) = iter.next().expect("plan covers ≥1 pattern");
    for (stream, vars) in iter {
        let joined = join(acc, acc_vars, stream, vars, strategy, &metrics);
        acc = joined.0;
        acc_vars = joined.1;
    }
    acc
}

/// Block-at-a-time sibling of [`build_plan_stream_with_chains`]: the same
/// operator-tree shape (same scans, same join order, same merge input
/// order), built from the vectorized operators with blocks of up to
/// `block_size` rows. Chain-relaxation subtrees reuse the row
/// implementation behind a [`RowsToBlocks`] adapter, so both executors
/// compute chain scores through identical code.
pub fn build_block_stream_with_chains<'g>(
    graph: &'g KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    block_size: usize,
) -> BoxedBlockStream<'g> {
    build_block_stream_inner(
        graph, query, plan, registry, chains, metrics, strategy, block_size, None,
    )
}

/// [`build_block_stream_with_chains`] with the scan of pattern `target`
/// partitioned: instead of owning its whole match list, that scan pulls
/// rank-range morsels from the shared `dispenser`. One such tree per
/// parallel worker (all sharing one dispenser) partitions the target's
/// rows across workers while every other operator runs privately — see
/// [`crate::parallel`] for the eligibility rules that make the union of
/// the workers' top-k exactly the sequential top-k.
#[allow(clippy::too_many_arguments)]
pub fn build_block_stream_morsels<'g>(
    graph: &'g KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    block_size: usize,
    target: usize,
    dispenser: Arc<MorselDispenser>,
) -> BoxedBlockStream<'g> {
    build_block_stream_inner(
        graph,
        query,
        plan,
        registry,
        chains,
        metrics,
        strategy,
        block_size,
        Some((target, dispenser)),
    )
}

#[allow(clippy::too_many_arguments)]
fn build_block_stream_inner<'g>(
    graph: &'g KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    block_size: usize,
    morsels: Option<(usize, Arc<MorselDispenser>)>,
) -> BoxedBlockStream<'g> {
    assert_eq!(plan.len(), query.len(), "plan/query arity mismatch");
    let block_size = block_size.max(1);
    let patterns = query.patterns();
    let mut next_fresh = query.var_count() as u32;

    let scan = |i: usize, weight: Score| -> BoxedBlockStream<'g> {
        if let Some((target, dispenser)) = &morsels {
            if *target == i {
                return Box::new(BlockScan::with_morsels(
                    graph,
                    patterns[i],
                    weight,
                    metrics.clone(),
                    block_size,
                    Arc::clone(dispenser),
                ));
            }
        }
        Box::new(BlockScan::new(
            graph,
            patterns[i],
            weight,
            metrics.clone(),
            block_size,
        ))
    };

    let mut parts: Vec<BoxedBlockStream<'g>> = Vec::new();

    // 1. Join group: left-deep block rank joins over bare block scans.
    let join_group = plan.join_group();
    if !join_group.is_empty() {
        let mut acc: Option<BoxedBlockStream<'g>> = None;
        for &i in &join_group {
            let right = scan(i, Score::ONE);
            acc = Some(match acc {
                None => right,
                Some(left) => block_join(left, right, strategy, &metrics, block_size),
            });
        }
        parts.push(acc.expect("non-empty join group"));
    }

    // 2. Singletons: block merges over the pattern + its relaxations (and
    //    adapted chain streams).
    for i in plan.singletons() {
        let mut inputs: Vec<BoxedBlockStream<'g>> = Vec::new();
        inputs.push(scan(i, Score::ONE));
        for r in registry.relaxations_for(&patterns[i]) {
            inputs.push(Box::new(BlockScan::new(
                graph,
                r.pattern,
                Score::new(r.weight),
                metrics.clone(),
                block_size,
            )));
        }
        for c in chains.chain_relaxations_for(&patterns[i], next_fresh) {
            next_fresh += c.fresh_vars.len() as u32;
            let row_stream = build_chain_stream(graph, &c, &patterns[i], &metrics, strategy);
            inputs.push(Box::new(RowsToBlocks::new(
                row_stream,
                collect_vars(std::slice::from_ref(&patterns[i])),
                block_size,
            )));
        }
        parts.push(Box::new(BlockIncrementalMerge::new(inputs, block_size)));
    }

    // 3. Combine all parts with block rank joins, left-deep in construction
    //    order.
    let mut iter = parts.into_iter();
    let mut acc = iter.next().expect("plan covers ≥1 pattern");
    for stream in iter {
        acc = block_join(acc, stream, strategy, &metrics, block_size);
    }
    acc
}

fn block_join<'g>(
    left: BoxedBlockStream<'g>,
    right: BoxedBlockStream<'g>,
    strategy: PullStrategy,
    metrics: &MetricsHandle,
    block_size: usize,
) -> BoxedBlockStream<'g> {
    let shared: Vec<Var> = left
        .schema()
        .iter()
        .copied()
        .filter(|v| right.schema().contains(v))
        .collect();
    Box::new(BlockRankJoin::new(
        left,
        right,
        shared,
        strategy,
        metrics.clone(),
        block_size,
    ))
}

fn join<'g>(
    left: BoxedStream<'g>,
    lvars: Vec<Var>,
    right: BoxedStream<'g>,
    rvars: Vec<Var>,
    strategy: PullStrategy,
    metrics: &MetricsHandle,
) -> (BoxedStream<'g>, Vec<Var>) {
    let shared: Vec<Var> = lvars
        .iter()
        .copied()
        .filter(|v| rvars.contains(v))
        .collect();
    let mut union = lvars;
    for v in rvars {
        if !union.contains(&v) {
            union.push(v);
        }
    }
    union.sort();
    let stream: BoxedStream<'g> = Box::new(RankJoin::new(
        left,
        right,
        shared,
        strategy,
        metrics.clone(),
    ));
    (stream, union)
}

fn collect_vars(patterns: &[sparql::TriplePattern]) -> Vec<Var> {
    let mut vars: Vec<Var> = Vec::new();
    for p in patterns {
        for v in p.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars.sort();
    vars
}

/// Builds the ranked stream of one instantiated chain relaxation: a
/// left-deep rank join over the chain's pattern scans, scaled by `w/len`
/// and projected onto the original pattern's variables.
fn build_chain_stream<'g>(
    graph: &'g KnowledgeGraph,
    chain: &relax::ChainRelaxation,
    original: &sparql::TriplePattern,
    metrics: &MetricsHandle,
    strategy: PullStrategy,
) -> BoxedStream<'g> {
    let mut acc: Option<(BoxedStream<'g>, Vec<Var>)> = None;
    for p in &chain.patterns {
        let scan: BoxedStream<'g> =
            Box::new(PatternScan::new(graph, *p, Score::ONE, metrics.clone()));
        let vars = collect_vars(std::slice::from_ref(p));
        acc = Some(match acc {
            None => (scan, vars),
            Some((left, lvars)) => join(left, lvars, scan, vars, strategy, metrics),
        });
    }
    let (stream, _) = acc.expect("chains have ≥ 2 patterns");
    let keep = collect_vars(std::slice::from_ref(original));
    Box::new(Projected::new(
        Scaled::new(stream, chain.weight / chain.patterns.len() as f64),
        keep,
    ))
}

/// Executes `plan` to the top-`k` answers.
pub fn run_plan(
    graph: &KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    k: usize,
) -> Vec<PartialAnswer> {
    let mut stream = build_plan_stream(graph, query, plan, registry, metrics, strategy);
    top_k(&mut stream, k)
}

/// Executes `plan` to the top-`k` answers with chain relaxations enabled.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_with_chains(
    graph: &KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    k: usize,
) -> Vec<PartialAnswer> {
    let mut stream =
        build_plan_stream_with_chains(graph, query, plan, registry, chains, metrics, strategy);
    top_k(&mut stream, k)
}

/// Executes `plan` to the top-`k` answers through the vectorized block
/// pipeline (blocks of up to `block_size` rows). Produces exactly the
/// answers (same bindings, same order, same scores) as [`run_plan`].
pub fn run_plan_blocks(
    graph: &KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    k: usize,
    block_size: usize,
) -> Vec<PartialAnswer> {
    static NO_CHAINS: std::sync::OnceLock<ChainRuleSet> = std::sync::OnceLock::new();
    run_plan_blocks_with_chains(
        graph,
        query,
        plan,
        registry,
        NO_CHAINS.get_or_init(ChainRuleSet::new),
        metrics,
        strategy,
        k,
        block_size,
    )
}

/// [`run_plan_blocks`] plus chain relaxations.
pub fn run_plan_blocks_with_chains(
    graph: &KnowledgeGraph,
    query: &Query,
    plan: &QueryPlan,
    registry: &RelaxationRegistry,
    chains: &ChainRuleSet,
    metrics: MetricsHandle,
    strategy: PullStrategy,
    k: usize,
    block_size: usize,
) -> Vec<PartialAnswer> {
    let mut stream = build_block_stream_with_chains(
        graph, query, plan, registry, chains, metrics, strategy, block_size,
    );
    top_k_blocks(&mut stream, k)
}

/// Brute-force ground truth: for every pattern, materialize the merged
/// (original + relaxations, max-score-deduplicated) binding list; hash-join
/// all lists; sort by total score descending (deterministic tie-break);
/// truncate to `k`.
///
/// Exhaustive and allocation-heavy by design — use only on test-sized data.
pub fn run_naive(
    graph: &KnowledgeGraph,
    query: &Query,
    registry: &RelaxationRegistry,
    k: usize,
) -> Vec<PartialAnswer> {
    let metrics = operators::OpMetrics::new_handle();
    let patterns = query.patterns();

    // Materialize the merged list of each pattern.
    let mut lists: Vec<Vec<PartialAnswer>> = Vec::with_capacity(patterns.len());
    for p in patterns {
        let mut inputs: Vec<BoxedStream<'_>> = Vec::new();
        inputs.push(Box::new(PatternScan::new(
            graph,
            *p,
            Score::ONE,
            metrics.clone(),
        )));
        for r in registry.relaxations_for(p) {
            inputs.push(Box::new(PatternScan::new(
                graph,
                r.pattern,
                Score::new(r.weight),
                metrics.clone(),
            )));
        }
        let mut merge = IncrementalMerge::new(inputs);
        let mut list = Vec::new();
        while let Some(a) = merge.next() {
            list.push(a);
        }
        lists.push(list);
    }

    // Fold with hash joins on the shared variables.
    let mut acc: Vec<PartialAnswer> = lists[0].clone();
    let mut acc_vars = collect_vars(&patterns[..1]);
    for (idx, list) in lists.iter().enumerate().skip(1) {
        let vars = collect_vars(&patterns[idx..=idx]);
        let shared: Vec<Var> = acc_vars
            .iter()
            .copied()
            .filter(|v| vars.contains(v))
            .collect();
        let mut table: FxHashMap<Box<[specqp_common::TermId]>, Vec<&PartialAnswer>> =
            FxHashMap::default();
        for a in &acc {
            table
                .entry(a.binding.key_for(&shared).expect("acc binds shared vars"))
                .or_default()
                .push(a);
        }
        let mut next: Vec<PartialAnswer> = Vec::new();
        for b in list {
            let key = b.binding.key_for(&shared).expect("list binds shared vars");
            if let Some(partners) = table.get(&key) {
                for a in partners {
                    next.push(PartialAnswer::new(
                        a.binding.merged(&b.binding),
                        a.score + b.score,
                    ));
                }
            }
        }
        for v in vars {
            if !acc_vars.contains(&v) {
                acc_vars.push(v);
            }
        }
        acc_vars.sort();
        acc = next;
    }

    acc.sort_by(|a, b| b.cmp(a));
    acc.truncate(k);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgstore::KnowledgeGraphBuilder;
    use operators::OpMetrics;
    use relax::{Position, TermRule};
    use sparql::QueryBuilder;

    /// Music KG: singers/lyricists with one relaxation each.
    fn setup() -> (KnowledgeGraph, RelaxationRegistry) {
        let mut b = KnowledgeGraphBuilder::new();
        for (e, c, s) in [
            ("shakira", "singer", 100.0),
            ("beyonce", "singer", 90.0),
            ("adele", "vocalist", 95.0),
            ("sia", "vocalist", 60.0),
            ("shakira", "lyricist", 50.0),
            ("adele", "lyricist", 45.0),
            ("sia", "writer", 40.0),
            ("beyonce", "writer", 30.0),
        ] {
            b.add(e, "type", c, s);
        }
        let g = b.build();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut reg = RelaxationRegistry::new();
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("singer").unwrap(),
            d.lookup("vocalist").unwrap(),
            0.8,
            ty,
        ));
        reg.add(TermRule::with_context(
            Position::Object,
            d.lookup("lyricist").unwrap(),
            d.lookup("writer").unwrap(),
            0.7,
            ty,
        ));
        (g, reg)
    }

    fn query(g: &KnowledgeGraph) -> Query {
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, ty, d.lookup("singer").unwrap());
        b.pattern(s, ty, d.lookup("lyricist").unwrap());
        b.project(s);
        b.build().unwrap()
    }

    #[test]
    fn trinit_plan_matches_naive_ground_truth() {
        let (g, reg) = setup();
        let q = query(&g);
        let naive = run_naive(&g, &q, &reg, 10);
        let m = OpMetrics::new_handle();
        let trinit = run_plan(
            &g,
            &q,
            &QueryPlan::all_relaxed(2),
            &reg,
            m,
            PullStrategy::Adaptive,
            10,
        );
        assert_eq!(naive.len(), trinit.len());
        for (a, b) in naive.iter().zip(&trinit) {
            assert!(a.score.approx_eq(b.score, 1e-9), "{:?} vs {:?}", a, b);
            assert_eq!(a.binding, b.binding);
        }
    }

    #[test]
    fn bare_plan_only_sees_original_matches() {
        let (g, reg) = setup();
        let q = query(&g);
        let m = OpMetrics::new_handle();
        let bare = run_plan(
            &g,
            &q,
            &QueryPlan::none_relaxed(2),
            &reg,
            m,
            PullStrategy::Adaptive,
            10,
        );
        // Only shakira is both singer and lyricist without relaxations.
        assert_eq!(bare.len(), 1);
        let d = g.dictionary();
        assert_eq!(
            bare[0].binding.get(sparql::Var(0)),
            Some(d.lookup("shakira").unwrap())
        );
        assert!(bare[0].score.approx_eq(Score::new(2.0), 1e-9));
    }

    #[test]
    fn mixed_plan_is_subset_of_trinit_with_correct_scores() {
        let (g, reg) = setup();
        let q = query(&g);
        let trinit = run_naive(&g, &q, &reg, 10);
        for plan in [
            QueryPlan::new(2, &[0]),
            QueryPlan::new(2, &[1]),
            QueryPlan::new(2, &[0, 1]),
            QueryPlan::new(2, &[]),
        ] {
            let m = OpMetrics::new_handle();
            let res = run_plan(&g, &q, &plan, &reg, m, PullStrategy::Adaptive, 10);
            // Every Spec-QP answer must appear in the full relaxed space
            // with the same score (plans only *prune* relaxations).
            for a in &res {
                let hit = trinit.iter().find(|t| t.binding == a.binding);
                if let Some(t) = hit {
                    assert!(a.score <= t.score + Score::new(1e-9));
                }
            }
            // Output is sorted.
            for w in res.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn plan_with_fewer_merges_creates_fewer_objects() {
        let (g, reg) = setup();
        let q = query(&g);
        let m_trinit = OpMetrics::new_handle();
        let _ = run_plan(
            &g,
            &q,
            &QueryPlan::all_relaxed(2),
            &reg,
            m_trinit.clone(),
            PullStrategy::Adaptive,
            3,
        );
        let m_spec = OpMetrics::new_handle();
        let _ = run_plan(
            &g,
            &q,
            &QueryPlan::none_relaxed(2),
            &reg,
            m_spec.clone(),
            PullStrategy::Adaptive,
            3,
        );
        assert!(
            m_spec.answers_created() <= m_trinit.answers_created(),
            "bare {} vs trinit {}",
            m_spec.answers_created(),
            m_trinit.answers_created()
        );
    }

    #[test]
    fn block_execution_matches_row_execution_bitwise() {
        let (g, reg) = setup();
        let q = query(&g);
        for plan in [
            QueryPlan::all_relaxed(2),
            QueryPlan::none_relaxed(2),
            QueryPlan::new(2, &[0]),
            QueryPlan::new(2, &[1]),
        ] {
            let rows = run_plan(
                &g,
                &q,
                &plan,
                &reg,
                OpMetrics::new_handle(),
                PullStrategy::Adaptive,
                10,
            );
            for size in [1, 3, 256] {
                let blocks = run_plan_blocks(
                    &g,
                    &q,
                    &plan,
                    &reg,
                    OpMetrics::new_handle(),
                    PullStrategy::Adaptive,
                    10,
                    size,
                );
                assert_eq!(blocks, rows, "plan {plan:?} size {size}");
            }
        }
    }

    #[test]
    fn single_pattern_query_runs() {
        let (g, reg) = setup();
        let d = g.dictionary();
        let ty = d.lookup("type").unwrap();
        let mut b = QueryBuilder::new();
        let s = b.var("s");
        b.pattern(s, ty, d.lookup("singer").unwrap());
        b.project(s);
        let q = b.build().unwrap();
        let m = OpMetrics::new_handle();
        let res = run_plan(
            &g,
            &q,
            &QueryPlan::all_relaxed(1),
            &reg,
            m,
            PullStrategy::Adaptive,
            4,
        );
        // singer: shakira(1.0), beyonce(0.9); vocalist relaxed: adele(0.8),
        // sia ≈ 0.505.
        assert_eq!(res.len(), 4);
        assert!(res[0].score.approx_eq(Score::new(1.0), 1e-9));
        assert!(res[2].score.approx_eq(Score::new(0.8), 1e-9));
    }
}
